package experiment

import (
	"strings"
	"testing"
)

// quick returns reduced-trial options for fast test runs.
func quick() Options { return Options{Seed: 1, Trials: 6} }

func TestAllRunnersSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep in -short mode")
	}
	seen := make(map[string]bool)
	for _, r := range All() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			if seen[r.ID] {
				t.Fatalf("duplicate experiment id %s", r.ID)
			}
			seen[r.ID] = true
			res, err := r.Run(Options{Seed: 2, Trials: 4})
			if err != nil {
				t.Fatalf("%s: %v", r.ID, err)
			}
			if res.ID != r.ID {
				t.Errorf("result id %q != runner id %q", res.ID, r.ID)
			}
			if len(res.Lines) == 0 {
				t.Errorf("%s produced no output", r.ID)
			}
			if len(res.Values) == 0 {
				t.Errorf("%s produced no metrics", r.ID)
			}
			if !strings.Contains(res.Text(), r.ID) {
				t.Errorf("%s text rendering missing id", r.ID)
			}
		})
	}
}

func TestByID(t *testing.T) {
	r, err := ByID("f10a")
	if err != nil || r.ID != "F10a" {
		t.Errorf("ByID = %+v, %v", r, err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestF4CalibrationReducesResidual(t *testing.T) {
	res, err := RunF4(quick())
	if err != nil {
		t.Fatal(err)
	}
	if res.Values["rmsdAfterOrientation"] >= res.Values["rmsdAfterDiversity"] {
		t.Errorf("orientation calibration did not reduce residual: %+v", res.Values)
	}
	if res.Values["diversityConfidence"] < 0.8 {
		t.Errorf("diversity estimate confidence %v too low", res.Values["diversityConfidence"])
	}
}

func TestF5OrientationAmplitude(t *testing.T) {
	res, err := RunF5(quick())
	if err != nil {
		t.Fatal(err)
	}
	pp := res.Values["peakToPeakRad"]
	if pp < 0.3 || pp > 1.5 {
		t.Errorf("peak-to-peak %v rad outside the ≈0.7 rad regime", pp)
	}
}

func TestF6RSharperThanQ(t *testing.T) {
	res, err := RunF6(quick())
	if err != nil {
		t.Fatal(err)
	}
	if res.Values["RSharpness"] <= res.Values["QSharpness"] {
		t.Errorf("R not sharper than Q: %+v", res.Values)
	}
	if res.Values["QPeakErrDeg"] > 3 || res.Values["RPeakErrDeg"] > 3 {
		t.Errorf("profile peaks stray from truth: %+v", res.Values)
	}
}

func TestF8MirrorPeaks(t *testing.T) {
	res, err := RunF8(quick())
	if err != nil {
		t.Fatal(err)
	}
	if res.Values["mirrorPeaks"] < 2 {
		t.Errorf("expected the two z-mirror peaks, got %v", res.Values["mirrorPeaks"])
	}
	if res.Values["RPeakAzErrDeg"] > 3 {
		t.Errorf("R 3D azimuth error %v°", res.Values["RPeakAzErrDeg"])
	}
}

func TestF10aAccuracyBand(t *testing.T) {
	res, err := RunF10a(Options{Seed: 1, Trials: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Values["meanCombined"] > 0.15 {
		t.Errorf("2D mean error %.1f cm implausibly high", res.Values["meanCombined"]*100)
	}
	if res.Values["meanCombined"] <= 0 {
		t.Error("zero error is implausible with noise on")
	}
}

func TestF10bAccuracyBand(t *testing.T) {
	res, err := RunF10b(Options{Seed: 1, Trials: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Values["meanCombined"] > 0.35 {
		t.Errorf("3D mean error %.1f cm implausibly high", res.Values["meanCombined"]*100)
	}
}

func TestF11bCalibrationHelps(t *testing.T) {
	res, err := RunF11b(Options{Seed: 1, Trials: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Values["improvement"] <= 1 {
		t.Errorf("orientation calibration should improve accuracy: %+v", res.Values)
	}
}

func TestF12cModelsBehaveAlike(t *testing.T) {
	res, err := RunF12c(quick())
	if err != nil {
		t.Fatal(err)
	}
	if res.Values["spread"] > 0.08 {
		t.Errorf("model spread %.1f cm too large", res.Values["spread"]*100)
	}
}

func TestT2TagspinWins(t *testing.T) {
	res, err := RunT2(Options{Seed: 1, Trials: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, method := range []string{"LandMarc", "AntLoc", "PinIt", "BackPos-4"} {
		if res.Values["factor@"+method] <= 1 {
			t.Errorf("%s beat Tagspin: factor %v", method, res.Values["factor@"+method])
		}
	}
	// BackPos with the dense calibrated anchor grid is legitimately
	// competitive in simulation (no RF-chain drift); it must still produce
	// a sane result.
	if res.Values["mean@BackPos-16"] <= 0 || res.Values["mean@BackPos-16"] > 2 {
		t.Errorf("BackPos-16 mean %v implausible", res.Values["mean@BackPos-16"])
	}
}

func TestA2SearchEquivalence(t *testing.T) {
	res, err := RunA2(quick())
	if err != nil {
		t.Fatal(err)
	}
	if res.Values["angleDiffDeg"] > 0.2 {
		t.Errorf("coarse-to-fine differs from exhaustive by %v°", res.Values["angleDiffDeg"])
	}
	if res.Values["speedup"] < 2 {
		t.Errorf("speedup %v implausibly low", res.Values["speedup"])
	}
}

func TestA6RobustBeatsLiteral(t *testing.T) {
	res, err := RunA6(Options{Seed: 1, Trials: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Values["ratio"] <= 1 {
		t.Errorf("robust weights should beat the literal reference: %+v", res.Values)
	}
}

func TestX1VerticalDiskResolvesMirror(t *testing.T) {
	res, err := RunX1(Options{Seed: 1, Trials: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.Values["signAccuracy"] < 0.9 {
		t.Errorf("vertical disk sign accuracy %v", res.Values["signAccuracy"])
	}
	if res.Values["meanVertical"] >= res.Values["meanDeadSpace"] {
		t.Errorf("vertical disk did not beat the dead-space rule: %+v", res.Values)
	}
}

func TestA7RBeatsQUnderOutliers(t *testing.T) {
	res, err := RunA7(Options{Seed: 1, Trials: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.Values["meanR@0.20"] >= res.Values["meanQ@0.20"] {
		t.Errorf("R should beat Q at 20%% outliers: R %v vs Q %v",
			res.Values["meanR@0.20"], res.Values["meanQ@0.20"])
	}
}

func TestX2MLBackendResolvesSignAndMatchesGrid(t *testing.T) {
	res, err := RunX2(Options{Seed: 1, Trials: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.Values["signAccML"] < 0.9 {
		t.Errorf("ML z-sign accuracy %v", res.Values["signAccML"])
	}
	if res.Values["mean3DML"] >= res.Values["mean3DGrid"] {
		t.Errorf("likelihood did not beat the dead-space default on staggered planes: %+v", res.Values)
	}
	// 2D accuracy must stay in the grid's league (same observations,
	// different fusion; neither should dominate at testbed noise).
	if res.Values["mean2DML"] > 2*res.Values["mean2DGrid"]+0.02 {
		t.Errorf("ML 2D error %v far above grid %v", res.Values["mean2DML"], res.Values["mean2DGrid"])
	}
}
