package experiment

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"github.com/tagspin/tagspin/internal/core"
	"github.com/tagspin/tagspin/internal/geom"
	"github.com/tagspin/tagspin/internal/mathx"
	"github.com/tagspin/tagspin/internal/phase"
	"github.com/tagspin/tagspin/internal/spectrum"
	"github.com/tagspin/tagspin/internal/spindisk"
	"github.com/tagspin/tagspin/internal/testbed"
)

// singleDiskScenario builds a one-disk deployment with the disk at pos and
// the reader at readerPos.
func singleDiskScenario(pos, readerPos geom.Vec3, rng *rand.Rand) *testbed.Scenario {
	sc := testbed.DefaultScenario(pos.Z, rng)
	sc.Installs = sc.Installs[:1]
	sc.Installs[0].Disk.Center = pos
	sc.PlaceReader(readerPos)
	return sc
}

// RunF3 reproduces Fig. 3: the raw wrapped phase sequence of a spinning tag
// repeats every rotation and wraps repeatedly within one.
func RunF3(opts Options) (Result, error) {
	rng := rand.New(rand.NewSource(opts.Seed + 3))
	sc := singleDiskScenario(geom.V3(0.40, 0, 0), geom.V3(0, 2.77, 0), rng)
	sc.Rotations = 5
	col, err := sc.Collect(rng)
	if err != nil {
		return Result{}, err
	}
	snaps := col.Obs[sc.Installs[0].Tag.EPC]
	phase.SortByTime(snaps)
	if len(snaps) < 40 {
		return Result{}, fmt.Errorf("f3: only %d reads", len(snaps))
	}
	// Count wrap discontinuities (paper: "the curve is not continuous due
	// to the mod operation").
	wraps := 0
	for i := 1; i < len(snaps); i++ {
		if math.Abs(snaps[i].Phase-snaps[i-1].Phase) > math.Pi {
			wraps++
		}
	}
	// Periodicity: the phase at t and t+period must agree (up to noise and
	// the varying orientation offset).
	period := sc.Installs[0].Disk.Period()
	var periodErr []float64
	for _, s := range snaps {
		shifted := s.Time + period
		// Find the closest snapshot to the shifted time.
		bestIdx, bestDt := -1, period
		for j, o := range snaps {
			dt := o.Time - shifted
			if dt < 0 {
				dt = -dt
			}
			if dt < bestDt {
				bestIdx, bestDt = j, dt
			}
		}
		if bestIdx >= 0 && bestDt < period/50 {
			periodErr = append(periodErr, math.Abs(mathx.WrapToPi(snaps[bestIdx].Phase-s.Phase)))
		}
	}
	res := Result{
		ID:    "F3",
		Title: "Raw phase of a spinning tag (Fig. 3)",
		Values: map[string]float64{
			"reads":                float64(len(snaps)),
			"wrapsPerFiveTurns":    float64(wraps),
			"periodicityErrRadP50": mathx.Percentile(periodErr, 50),
		},
	}
	res.Lines = append(res.Lines,
		fmt.Sprintf("reads collected over 5 rotations: %d", len(snaps)),
		fmt.Sprintf("mod-2π discontinuities: %d", wraps),
		fmt.Sprintf("median |phase(t) − phase(t+T)|: %.3f rad (repeats per rotation)",
			res.Values["periodicityErrRadP50"]))
	// A downsampled series, as the figure plots.
	var sb strings.Builder
	sb.WriteString("series (read#: rad):")
	for i := 0; i < len(snaps) && i < 200; i += 10 {
		fmt.Fprintf(&sb, " %d:%.2f", i, snaps[i].Phase)
	}
	res.Lines = append(res.Lines, sb.String())
	return res, nil
}

// RunF4 reproduces Fig. 4: the smoothed phase sequence is offset from the
// theoretical one by the diversity term (a); subtracting the constant
// aligns them except for the orientation wiggle (b); orientation calibration
// removes most of the rest (c).
func RunF4(opts Options) (Result, error) {
	rng := rand.New(rand.NewSource(opts.Seed + 4))
	diskPos := geom.V3(0.40, 0, 0)
	readerPos := geom.V3(0, 2.77, 0)
	sc := singleDiskScenario(diskPos, readerPos, rng)
	sc.Rotations = 3
	install := sc.Installs[0]
	cal, err := sc.CalibrateOrientation(install, rng)
	if err != nil {
		return Result{}, err
	}
	col, err := sc.Collect(rng)
	if err != nil {
		return Result{}, err
	}
	snaps := col.Obs[install.Tag.EPC]
	phase.SortByTime(snaps)

	// Ground truth per snapshot from Eqn. 3.
	bigD := diskPos.DistanceTo(readerPos)
	phiR := readerPos.Sub(diskPos).Azimuth()
	theory := make([]float64, len(snaps))
	measured := make([]float64, len(snaps))
	for i, s := range snaps {
		a := install.Disk.Angle(s.Time)
		theory[i] = phase.Model2D(s.Wavelength(), bigD, install.Disk.Radius, a, phiR)
		measured[i] = s.Phase
	}
	// Stage a: constant misalignment (the diversity term).
	offset, confidence, err := phase.EstimateDiversity(measured, theory)
	if err != nil {
		return Result{}, err
	}
	// Stage b: subtract the constant.
	afterDiv := make([]float64, len(measured))
	for i := range measured {
		afterDiv[i] = mathx.WrapPhase(measured[i] - offset)
	}
	rmsdDiv := mathx.PhaseRMSD(afterDiv, theory)
	// Stage c: also subtract the fitted orientation offset.
	corrected := cal.Apply(snaps, func(i int) float64 {
		return install.Disk.OrientationTo(install.Disk.Angle(snaps[i].Time), phiR)
	})
	afterOrient := make([]float64, len(corrected))
	for i, s := range corrected {
		afterOrient[i] = mathx.WrapPhase(s.Phase - offset)
	}
	// The orientation reference (ρ=π/2) may leave a small constant; strip
	// it like stage a does before computing the residual.
	residOffset, _, err := phase.EstimateDiversity(afterOrient, theory)
	if err != nil {
		return Result{}, err
	}
	for i := range afterOrient {
		afterOrient[i] = mathx.WrapPhase(afterOrient[i] - residOffset)
	}
	rmsdOrient := mathx.PhaseRMSD(afterOrient, theory)

	res := Result{
		ID:    "F4",
		Title: "Phase calibration stages (Fig. 4)",
		Values: map[string]float64{
			"diversityOffsetRad":   offset,
			"diversityConfidence":  confidence,
			"rmsdAfterDiversity":   rmsdDiv,
			"rmsdAfterOrientation": rmsdOrient,
			"residualImprovement":  rmsdDiv / rmsdOrient,
		},
	}
	res.Lines = append(res.Lines,
		fmt.Sprintf("(a) smoothed-vs-theory misalignment: %.3f rad (confidence %.2f) — the θ_div term", offset, confidence),
		fmt.Sprintf("(b) residual RMS after diversity calibration: %.3f rad (orientation wiggle + noise)", rmsdDiv),
		fmt.Sprintf("(c) residual RMS after orientation calibration: %.3f rad (≈ thermal noise)", rmsdOrient),
		fmt.Sprintf("    stage (b)→(c) residual shrinks %.1f×", rmsdDiv/rmsdOrient))
	return res, nil
}

// RunF5 reproduces Fig. 5: a tag spinning at the disk *center* keeps its
// distance to the reader constant, yet its phase fluctuates by ≈0.7 rad —
// the orientation effect in isolation.
func RunF5(opts Options) (Result, error) {
	rng := rand.New(rand.NewSource(opts.Seed + 5))
	sc := singleDiskScenario(geom.V3(0.40, 0, 0), geom.V3(0, 2.77, 0), rng)
	sc.Installs[0].Disk.Mount = spindisk.MountCenter
	sc.Rotations = 2
	col, err := sc.Collect(rng)
	if err != nil {
		return Result{}, err
	}
	snaps := col.Obs[sc.Installs[0].Tag.EPC]
	phase.SortByTime(snaps)
	smooth := phase.Smooth(snaps)
	// A short moving average knocks the per-read noise down (σ/√11) so the
	// peak-to-peak measures the orientation response, not noise extremes.
	avg := movingAverage(smooth, 11)
	lo, hi := avg[0], avg[0]
	for _, v := range avg {
		lo, hi = math.Min(lo, v), math.Max(hi, v)
	}
	groundTruth := sc.Installs[0].Tag.OrientationPeakToPeak()
	res := Result{
		ID:    "F5",
		Title: "Orientation-only phase fluctuation (Fig. 5)",
		Values: map[string]float64{
			"peakToPeakRad":            hi - lo,
			"groundTruthPeakToPeakRad": groundTruth,
		},
	}
	res.Lines = append(res.Lines,
		fmt.Sprintf("center-mounted tag, constant distance: phase still swings %.2f rad peak-to-peak", hi-lo),
		fmt.Sprintf("injected ground-truth orientation response: %.2f rad peak-to-peak", groundTruth),
		"(the paper reports ≈0.7 rad; distance to the reader never changed)")
	return res, nil
}

// profileMetrics renders one profile's quality row.
func profileMetrics(name string, prof spectrum.Profile, truthAz float64) ([]string, map[string]float64) {
	peakAz, _ := prof.Peak()
	n := prof.Normalized()
	vals := map[string]float64{
		name + "PeakErrDeg": geom.Degrees(geom.AngleDistance(peakAz, truthAz)),
		name + "Sharpness":  n.Sharpness(),
		name + "HPBWDeg":    geom.Degrees(n.HalfPowerBeamwidth()),
		name + "SidelobeDB": 10 * math.Log10(n.PeakToSidelobe()),
	}
	row := []string{
		name,
		fmt.Sprintf("%.2f", vals[name+"PeakErrDeg"]),
		fmt.Sprintf("%.1f", vals[name+"Sharpness"]),
		fmt.Sprintf("%.1f", vals[name+"HPBWDeg"]),
		fmt.Sprintf("%.1f", vals[name+"SidelobeDB"]),
	}
	return row, vals
}

// asciiProfile renders a 36-bin bar chart of a normalized profile.
func asciiProfile(prof spectrum.Profile) []string {
	n := prof.Normalized()
	bins := 36
	out := make([]string, 0, 2)
	var sb strings.Builder
	for b := 0; b < bins; b++ {
		// Max power within the bin.
		var m float64
		for i, a := range n.Angles {
			if int(a/(2*math.Pi)*float64(bins)) == b && n.Power[i] > m {
				m = n.Power[i]
			}
		}
		sb.WriteByte(" .:-=+*#%@"[int(math.Min(m, 0.999)*10)])
	}
	out = append(out, "profile 0°→350° (10°/char): ["+sb.String()+"]")
	return out
}

// RunF6 reproduces Fig. 6: with one spinning tag at (40 cm, 0) and the
// reader at (−280 cm, 0), both profiles peak at 180° but R(φ) is far
// sharper than Q(φ).
func RunF6(opts Options) (Result, error) {
	rng := rand.New(rand.NewSource(opts.Seed + 6))
	diskPos := geom.V3(0.40, 0, 0)
	readerPos := geom.V3(-2.80, 0, 0)
	sc := singleDiskScenario(diskPos, readerPos, rng)
	// The paper's Fig. 6 is a *simulation* ("a typical indoor scenario is
	// simulated"): thermal noise only, no orientation effect.
	sc.Channel.OrientationEffect = 0
	col, err := sc.Collect(rng)
	if err != nil {
		return Result{}, err
	}
	snaps := col.Obs[sc.Installs[0].Tag.EPC]
	phase.SortByTime(snaps)
	params := spectrum.Params{Disk: sc.Installs[0].Disk}
	angles := spectrum.UniformAngles(1440)
	q, err := spectrum.Compute2D(snaps, params, spectrum.KindQ, angles)
	if err != nil {
		return Result{}, err
	}
	r, err := spectrum.Compute2D(snaps, params, spectrum.KindR, angles)
	if err != nil {
		return Result{}, err
	}
	truthAz := readerPos.Sub(diskPos).Azimuth()
	res := Result{
		ID:     "F6",
		Title:  "Q(φ) vs R(φ) power profiles (Fig. 6)",
		Values: map[string]float64{},
	}
	qRow, qVals := profileMetrics("Q", q, truthAz)
	rRow, rVals := profileMetrics("R", r, truthAz)
	for k, v := range qVals {
		res.Values[k] = v
	}
	for k, v := range rVals {
		res.Values[k] = v
	}
	res.Values["sharpnessGain"] = res.Values["RSharpness"] / res.Values["QSharpness"]
	res.Lines = append(res.Lines, table(
		[]string{"profile", "peak err (°)", "sharpness", "HPBW (°)", "PSLR (dB)"},
		[][]string{qRow, rRow})...)
	res.Lines = append(res.Lines, "Q "+asciiProfile(q)[0], "R "+asciiProfile(r)[0],
		fmt.Sprintf("R concentrates %.1f× more than Q (peak/mean)", res.Values["sharpnessGain"]))
	return res, nil
}

// RunF8 reproduces Fig. 8: the 3D profiles, their two z-mirror peaks, and
// R's advantage over Q in 3D.
func RunF8(opts Options) (Result, error) {
	rng := rand.New(rand.NewSource(opts.Seed + 8))
	diskPos := geom.V3(0.40, 0, 0)
	readerPos := geom.V3(-2.50, 0, 1.0)
	sc := singleDiskScenario(diskPos, readerPos, rng)
	// Like Fig. 6, the paper's Fig. 8 is a noise-only simulation.
	sc.Channel.OrientationEffect = 0
	col, err := sc.Collect(rng)
	if err != nil {
		return Result{}, err
	}
	snaps := col.Obs[sc.Installs[0].Tag.EPC]
	phase.SortByTime(snaps)
	params := spectrum.Params{Disk: sc.Installs[0].Disk}
	az := spectrum.UniformAngles(180) // 2° azimuth grid
	pol := mathx.Linspace(-math.Pi/2, math.Pi/2, 91)
	q, err := spectrum.Compute3D(snaps, params, spectrum.KindQ, az, pol)
	if err != nil {
		return Result{}, err
	}
	r, err := spectrum.Compute3D(snaps, params, spectrum.KindR, az, pol)
	if err != nil {
		return Result{}, err
	}
	rel := readerPos.Sub(diskPos)
	truthAz, truthPol := rel.Azimuth(), rel.Polar()
	qAz, qPol, _ := q.Peak()
	rAz, rPol, _ := r.Peak()
	maxima := r.Normalized().LocalMaxima(0.8)
	res := Result{
		ID:    "F8",
		Title: "3D power profiles and mirror peaks (Fig. 8)",
		Values: map[string]float64{
			"QPeakAzErrDeg":   geom.Degrees(geom.AngleDistance(qAz, truthAz)),
			"QPeakPolErrDeg":  geom.Degrees(math.Abs(math.Abs(qPol) - math.Abs(truthPol))),
			"RPeakAzErrDeg":   geom.Degrees(geom.AngleDistance(rAz, truthAz)),
			"RPeakPolErrDeg":  geom.Degrees(math.Abs(math.Abs(rPol) - math.Abs(truthPol))),
			"QSharpness":      q.Sharpness(),
			"RSharpness":      r.Sharpness(),
			"mirrorPeaks":     float64(len(maxima)),
			"mirrorAsymmetry": 0,
		},
	}
	if len(maxima) >= 2 {
		res.Values["mirrorAsymmetry"] = math.Abs(maxima[0].Power-maxima[1].Power) / maxima[0].Power
	}
	res.Lines = append(res.Lines,
		fmt.Sprintf("truth: azimuth %.1f°, polar ±%.1f° (z-mirror ambiguity, §V-B)",
			geom.Degrees(truthAz), geom.Degrees(math.Abs(truthPol))),
		fmt.Sprintf("Q peak: az err %.2f°, |pol| err %.2f°, sharpness %.1f",
			res.Values["QPeakAzErrDeg"], res.Values["QPeakPolErrDeg"], res.Values["QSharpness"]),
		fmt.Sprintf("R peak: az err %.2f°, |pol| err %.2f°, sharpness %.1f",
			res.Values["RPeakAzErrDeg"], res.Values["RPeakPolErrDeg"], res.Values["RSharpness"]),
		fmt.Sprintf("local maxima ≥0.8·peak in R: %d (expected 2, mirrored in γ; power asymmetry %.1f%%)",
			len(maxima), 100*res.Values["mirrorAsymmetry"]))
	return res, nil
}

// movingAverage smooths xs with a centered window.
func movingAverage(xs []float64, window int) []float64 {
	if window < 2 || len(xs) < window {
		return xs
	}
	half := window / 2
	out := make([]float64, len(xs))
	for i := range xs {
		lo, hi := i-half, i+half
		if lo < 0 {
			lo = 0
		}
		if hi >= len(xs) {
			hi = len(xs) - 1
		}
		var sum float64
		for k := lo; k <= hi; k++ {
			sum += xs[k]
		}
		out[i] = sum / float64(hi-lo+1)
	}
	return out
}

// RunF1 reproduces Fig. 1, the paper's toy overview: three spinning tags
// anchored in the infrastructure each produce a power profile with a sharp
// peak at the reader's direction, and the three bearing lines intersect at
// the reader.
func RunF1(opts Options) (Result, error) {
	rng := rand.New(rand.NewSource(opts.Seed + 1))
	sc := testbed.DefaultScenario(0, rng)
	// Three disks spread out, as the figure sketches.
	third := sc.Installs[0]
	third.Tag = newDefaultTag(rng)
	third.Disk.Center = geom.V3(0, -0.6, 0)
	third.Disk.Theta0 = 2.1
	sc.Installs = append(sc.Installs, third)
	target := geom.V3(-1.5, 1.8, 0)
	sc.PlaceReader(target)
	col, err := sc.Collect(rng)
	if err != nil {
		return Result{}, err
	}
	res := Result{
		ID:     "F1",
		Title:  "Toy overview: three spinning tags pinpoint the reader (Fig. 1)",
		Values: map[string]float64{},
	}
	angles := spectrum.UniformAngles(720)
	for i, in := range sc.Installs {
		snaps := col.Obs[in.Tag.EPC]
		phase.SortByTime(snaps)
		prof, err := spectrum.Compute2D(snaps, spectrum.Params{Disk: in.Disk}, spectrum.KindR, angles)
		if err != nil {
			return Result{}, err
		}
		peak, _ := prof.Peak()
		want := target.Sub(in.Disk.Center).Azimuth()
		res.Values[fmt.Sprintf("peakErrDeg@T%d", i+1)] = geom.Degrees(geom.AngleDistance(peak, want))
		res.Lines = append(res.Lines, fmt.Sprintf(
			"T%d at %v: peak %.1f° (truth %.1f°) %s",
			i+1, in.Disk.Center.XY(), geom.Degrees(peak), geom.Degrees(want),
			asciiProfile(prof)[0]))
	}
	loc := core.NewLocator(core.Config{})
	fix, err := loc.Locate2D(col.Registered, col.Obs)
	if err != nil {
		return Result{}, err
	}
	res.Values["errCm"] = fix.Position.DistanceTo(target.XY()) * 100
	res.Lines = append(res.Lines,
		fmt.Sprintf("three bearing lines intersect at %v; truth %v; error %.1f cm",
			fix.Position, target.XY(), res.Values["errCm"]))
	return res, nil
}
