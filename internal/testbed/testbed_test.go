package testbed

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"github.com/tagspin/tagspin/internal/gen2"
	"github.com/tagspin/tagspin/internal/geom"
	"github.com/tagspin/tagspin/internal/mathx"
	"github.com/tagspin/tagspin/internal/spindisk"
)

func TestDefaultScenarioShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sc := DefaultScenario(0.095, rng)
	if len(sc.Installs) != 2 {
		t.Fatalf("installs = %d", len(sc.Installs))
	}
	dist := sc.Installs[0].Disk.Center.DistanceTo(sc.Installs[1].Disk.Center)
	if math.Abs(dist-0.5) > 1e-9 {
		t.Errorf("disk centers %.2f m apart, want 0.50", dist)
	}
	for i, in := range sc.Installs {
		if in.Disk.Center.Z != 0.095 {
			t.Errorf("install %d at z = %v", i, in.Disk.Center.Z)
		}
		if err := in.Disk.Validate(); err != nil {
			t.Errorf("install %d: %v", i, err)
		}
		if in.Tag == nil {
			t.Fatalf("install %d has no tag", i)
		}
	}
	if sc.Installs[0].Tag.EPC == sc.Installs[1].Tag.EPC {
		t.Error("both installs share an EPC")
	}
}

func TestPlaceReaderPointsAtDisks(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	sc := DefaultScenario(0, rng)
	pos := geom.V3(2, 2, 0)
	sc.PlaceReader(pos)
	if sc.Antenna.Position != pos {
		t.Errorf("antenna at %v", sc.Antenna.Position)
	}
	// Boresight faces the disk centroid (the origin).
	want := geom.V3(0, 0, 0).Sub(pos).Azimuth()
	if geom.AngleDistance(sc.Antenna.Boresight, want) > 1e-9 {
		t.Errorf("boresight %v, want %v", sc.Antenna.Boresight, want)
	}
}

func TestCollectProducesPlausibleSessions(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sc := DefaultScenario(0, rng)
	sc.PlaceReader(geom.V3(-1.5, 1.5, 0))
	col, err := sc.Collect(rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(col.Obs) != 2 || len(col.Registered) != 2 {
		t.Fatalf("obs=%d registered=%d", len(col.Obs), len(col.Registered))
	}
	duration := time.Duration(2 * float64(sc.Installs[0].Disk.Period()))
	for epc, snaps := range col.Obs {
		// 80 Hz nominal over two rotations (4 s) with read-probability
		// gating: expect a few hundred reads but not the full 320.
		if len(snaps) < 100 || len(snaps) > 320 {
			t.Errorf("tag %s: %d snapshots", epc, len(snaps))
		}
		for i, s := range snaps {
			if s.Time < 0 || s.Time >= duration {
				t.Fatalf("tag %s snap %d at %v outside session", epc, i, s.Time)
			}
			if s.Phase < 0 || s.Phase >= 2*math.Pi {
				t.Fatalf("tag %s snap %d phase %v", epc, i, s.Phase)
			}
			if s.AntennaID != sc.Antenna.ID {
				t.Fatalf("tag %s snap %d antenna %d", epc, i, s.AntennaID)
			}
		}
	}
}

func TestCollectEmptyScenario(t *testing.T) {
	sc := &Scenario{}
	if _, err := sc.Collect(rand.New(rand.NewSource(1))); err == nil {
		t.Error("empty scenario accepted")
	}
}

func TestHoppingProducesMultipleChannels(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	sc := DefaultScenario(0, rng)
	sc.HopChannel = -1
	sc.PlaceReader(geom.V3(-1.5, 1.5, 0))
	col, err := sc.Collect(rng)
	if err != nil {
		t.Fatal(err)
	}
	freqs := make(map[float64]bool)
	for _, snaps := range col.Obs {
		for _, s := range snaps {
			freqs[s.FrequencyHz] = true
		}
	}
	if len(freqs) < 4 {
		t.Errorf("hopping produced only %d distinct carriers", len(freqs))
	}
}

func TestCalibrateOrientationRecoversTagResponse(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	sc := DefaultScenario(0, rng)
	sc.PlaceReader(geom.V3(0, 2.5, 0))
	in := sc.Installs[0]
	cal, err := sc.CalibrateOrientation(in, rng)
	if err != nil {
		t.Fatal(err)
	}
	// The fitted offset must track the tag's ground-truth response
	// (relative to ρ = π/2) to within the noise floor.
	var worst float64
	for i := 0; i < 72; i++ {
		rho := 2 * math.Pi * float64(i) / 72
		want := in.Tag.OrientationOffset(rho) - in.Tag.OrientationOffset(math.Pi/2)
		worst = math.Max(worst, math.Abs(cal.Offset(rho)-want))
	}
	if worst > 0.08 {
		t.Errorf("fitted orientation offset deviates %v rad worst-case", worst)
	}
}

func TestCalibratedSpinningTags(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	sc := DefaultScenario(0, rng)
	sc.PlaceReader(geom.V3(0, 2.5, 0))
	st, err := sc.CalibratedSpinningTags(rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(st) != 2 {
		t.Fatalf("len = %d", len(st))
	}
	for _, s := range st {
		if s.Orientation == nil {
			t.Errorf("tag %s missing calibration", s.EPC)
		}
	}
}

func TestActuatorImperfectionsFlowThrough(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sc := DefaultScenario(0, rng)
	sc.Actuator = spindisk.ActuatorConfig{JitterStd: 0.02, SurveyStd: 0.01}
	sc.PlaceReader(geom.V3(-1.5, 1.5, 0))
	col, err := sc.Collect(rng)
	if err != nil {
		t.Fatal(err)
	}
	// With jitter and survey error the phase residual against the ideal
	// model must exceed the pure-noise floor.
	var snaps = col.Obs[sc.Installs[0].Tag.EPC]
	if len(snaps) < 50 {
		t.Fatalf("only %d snapshots", len(snaps))
	}
	var phases []float64
	for _, s := range snaps {
		phases = append(phases, s.Phase)
	}
	if sd := mathx.CircularStd(phases); sd < 0.1 {
		t.Errorf("implausibly concentrated phases (std %v) with jitter on", sd)
	}
}

func TestCollectWithGen2MAC(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	sc := DefaultScenario(0, rng)
	sc.Gen2 = &gen2.Config{AdaptiveQ: true}
	sc.PlaceReader(geom.V3(-1.5, 1.5, 0))
	col, err := sc.Collect(rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(col.Obs) != 2 {
		t.Fatalf("tags = %d", len(col.Obs))
	}
	duration := time.Duration(2 * float64(sc.Installs[0].Disk.Period()))
	var gaps []float64
	for epc, snaps := range col.Obs {
		if len(snaps) < 50 {
			t.Errorf("tag %s: only %d MAC-scheduled reads", epc, len(snaps))
		}
		for i, s := range snaps {
			if s.Time <= 0 || s.Time > duration+5*time.Millisecond {
				t.Fatalf("tag %s read %d at %v", epc, i, s.Time)
			}
			if i > 0 {
				if s.Time < snaps[i-1].Time {
					t.Fatalf("tag %s reads out of order", epc)
				}
				gaps = append(gaps, (s.Time - snaps[i-1].Time).Seconds())
			}
		}
	}
	// MAC timing is bursty, not uniform: inter-read gaps must vary far
	// more than a fixed-rate schedule's would.
	if cv := mathx.Std(gaps) / mathx.Mean(gaps); cv < 0.3 {
		t.Errorf("gen2 gaps look uniform (cv = %.2f)", cv)
	}
}
