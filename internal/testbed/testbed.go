// Package testbed assembles the simulated world the paper's evaluation ran
// in: an office-room radio environment, spinning-tag installations, and a
// target reader antenna. It drives the channel simulator through collection
// sessions and produces exactly what the real system would hand the
// localization server — per-EPC snapshot series — plus the §III-B
// orientation-calibration prelude.
package testbed

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/tagspin/tagspin/internal/antenna"
	"github.com/tagspin/tagspin/internal/channel"
	"github.com/tagspin/tagspin/internal/core"
	"github.com/tagspin/tagspin/internal/gen2"
	"github.com/tagspin/tagspin/internal/geom"
	"github.com/tagspin/tagspin/internal/phase"
	"github.com/tagspin/tagspin/internal/spindisk"
	"github.com/tagspin/tagspin/internal/tags"
)

// Install is one spinning-tag installation: a physical tag on a disk.
type Install struct {
	// Tag is the physical tag instance.
	Tag *tags.Tag
	// Disk is the nominal (registry) disk geometry.
	Disk spindisk.Disk
}

// Scenario describes a complete simulated deployment.
type Scenario struct {
	// Channel is the radio environment.
	Channel channel.Config
	// Band is the frequency plan.
	Band channel.Band
	// HopChannel is the fixed hop channel index; negative means the
	// reader hops randomly across the band each read.
	HopChannel int
	// Antenna is the target reader antenna to be localized.
	Antenna antenna.Antenna
	// Installs are the spinning-tag installations.
	Installs []Install
	// ReadRateHz is the nominal interrogation attempt rate per tag.
	// Zero means 80 (a Gen2 reader sees a lone tag a few dozen times per
	// second per antenna).
	ReadRateHz float64
	// Rotations is how many disk rotations one session records; zero
	// means 2.
	Rotations float64
	// Actuator sets motor/survey imperfections shared by all disks.
	Actuator spindisk.ActuatorConfig
	// Gen2, when non-nil, schedules reads through the EPC Gen2 inventory
	// MAC (slotted ALOHA + adaptive Q) instead of the uniform-rate
	// default. ReadRateHz is ignored in that mode; the MAC's timing
	// produces the rate.
	Gen2 *gen2.Config
}

// readRate returns the effective attempt rate.
func (s *Scenario) readRate() float64 {
	if s.ReadRateHz <= 0 {
		return 80
	}
	return s.ReadRateHz
}

// rotations returns the effective session length in rotations.
func (s *Scenario) rotations() float64 {
	if s.Rotations <= 0 {
		return 2
	}
	return s.Rotations
}

// DefaultScenario builds the paper's default 2D/3D layout: two disks with
// 10 cm radius and ω = π rad/s centered at (±25 cm, 0, z), default-model
// tags, free-space channel with σ = 0.1 rad phase noise, one 8 dBi antenna
// (positioned later), fixed mid-band channel.
func DefaultScenario(diskZ float64, rng *rand.Rand) *Scenario {
	disks := []geom.Vec3{geom.V3(-0.25, 0, diskZ), geom.V3(0.25, 0, diskZ)}
	installs := make([]Install, 0, len(disks))
	for i, c := range disks {
		installs = append(installs, Install{
			Tag: tags.New(tags.DefaultModel(), rng),
			Disk: spindisk.Disk{
				Center: c,
				Radius: 0.10,
				Omega:  math.Pi,
				Theta0: float64(i) * math.Pi / 3, // stagger starting angles
			},
		})
	}
	ants := antenna.YeonSet(1, rng)
	return &Scenario{
		Channel:    channel.DefaultConfig(),
		Band:       channel.ChinaBand(),
		HopChannel: channel.ChinaBand().MidChannel(),
		Antenna:    ants[0],
		Installs:   installs,
	}
}

// PlaceReader positions the target antenna and points its boresight at the
// centroid of the disks.
func (s *Scenario) PlaceReader(pos geom.Vec3) {
	s.Antenna.Position = pos
	var centroid geom.Vec3
	for _, in := range s.Installs {
		centroid = centroid.Add(in.Disk.Center)
	}
	if n := len(s.Installs); n > 0 {
		centroid = centroid.Scale(1 / float64(n))
	}
	s.Antenna.Boresight = centroid.Sub(pos).Azimuth()
}

// Collection is the output of one session: what the localization server
// receives.
type Collection struct {
	// Obs holds the per-EPC snapshot series.
	Obs core.Observations
	// Registered mirrors the registry contents for the session's tags,
	// without orientation calibrations (attach them separately).
	Registered []core.SpinningTag
}

// Collect runs one collection session: every installed tag spins for the
// configured number of rotations while the reader interrogates it at the
// nominal rate; successful reads become snapshots.
func (s *Scenario) Collect(rng *rand.Rand) (Collection, error) {
	if len(s.Installs) == 0 {
		return Collection{}, fmt.Errorf("testbed: no installs")
	}
	sim, err := channel.NewSimulator(s.Channel, rng)
	if err != nil {
		return Collection{}, err
	}
	col := Collection{Obs: make(core.Observations, len(s.Installs))}
	if s.Gen2 != nil {
		if err := s.collectGen2(sim, &col, rng); err != nil {
			return Collection{}, err
		}
	} else {
		for _, in := range s.Installs {
			snaps, err := s.collectOne(sim, in, rng)
			if err != nil {
				return Collection{}, err
			}
			col.Obs[in.Tag.EPC] = snaps
		}
	}
	for _, in := range s.Installs {
		col.Registered = append(col.Registered, core.SpinningTag{EPC: in.Tag.EPC, Disk: in.Disk})
	}
	return col, nil
}

// collectGen2 runs one session with read timing produced by the Gen2 MAC:
// slot contention couples the tags, so the session is simulated jointly.
func (s *Scenario) collectGen2(sim *channel.Simulator, col *Collection, rng *rand.Rand) error {
	mac, err := gen2.New(*s.Gen2, rng)
	if err != nil {
		return err
	}
	acts := make([]*spindisk.Actuator, len(s.Installs))
	var period time.Duration
	for i, in := range s.Installs {
		act, err := spindisk.NewActuator(in.Disk, s.Actuator, rng)
		if err != nil {
			return err
		}
		acts[i] = act
		if p := in.Disk.Period(); p > period {
			period = p
		}
	}
	duration := time.Duration(s.rotations() * float64(period))
	// Participation = powered at that instant, on the session's carrier.
	// Frequency per attempt is drawn when the read materializes; for the
	// participation check the mid-band carrier is representative.
	midFreq, err := s.Band.FrequencyHz(s.Band.MidChannel())
	if err != nil {
		return err
	}
	participate := func(tag int, at time.Duration) bool {
		in := s.Installs[tag]
		a := in.Disk.Angle(at)
		return sim.Powered(channel.Query{
			Tag:           in.Tag,
			TagPos:        acts[tag].TruePosition(a),
			TagPlaneAngle: in.Disk.TagPlaneAngle(a),
			Antenna:       s.Antenna,
			FrequencyHz:   midFreq,
		})
	}
	reads, err := mac.Run(duration, len(s.Installs), participate)
	if err != nil {
		return err
	}
	for _, r := range reads {
		in := s.Installs[r.Tag]
		freq, err := s.frequency(rng)
		if err != nil {
			return err
		}
		trueAngle := acts[r.Tag].TrueAngle(r.At)
		obs, ok := sim.ObserveSingulated(channel.Query{
			Tag:           in.Tag,
			TagPos:        acts[r.Tag].TruePosition(trueAngle),
			TagPlaneAngle: in.Disk.TagPlaneAngle(trueAngle),
			Antenna:       s.Antenna,
			FrequencyHz:   freq,
		})
		if !ok {
			continue
		}
		col.Obs[in.Tag.EPC] = append(col.Obs[in.Tag.EPC], phase.Snapshot{
			Time:        r.At,
			Phase:       obs.PhaseRad,
			RSSIdBm:     obs.RSSIdBm,
			FrequencyHz: freq,
			AntennaID:   s.Antenna.ID,
		})
	}
	return nil
}

// frequency picks the carrier for one read attempt.
func (s *Scenario) frequency(rng *rand.Rand) (float64, error) {
	ch := s.HopChannel
	if ch < 0 {
		ch = rng.Intn(s.Band.Channels)
	}
	return s.Band.FrequencyHz(ch)
}

// collectOne runs the session for a single install.
func (s *Scenario) collectOne(sim *channel.Simulator, in Install, rng *rand.Rand) ([]phase.Snapshot, error) {
	act, err := spindisk.NewActuator(in.Disk, s.Actuator, rng)
	if err != nil {
		return nil, err
	}
	duration := time.Duration(s.rotations() * float64(in.Disk.Period()))
	step := time.Duration(float64(time.Second) / s.readRate())
	var snaps []phase.Snapshot
	for t := time.Duration(0); t < duration; t += step {
		freq, err := s.frequency(rng)
		if err != nil {
			return nil, err
		}
		trueAngle := act.TrueAngle(t)
		obs, ok := sim.Observe(channel.Query{
			Tag:           in.Tag,
			TagPos:        act.TruePosition(trueAngle),
			TagPlaneAngle: in.Disk.TagPlaneAngle(trueAngle),
			Antenna:       s.Antenna,
			FrequencyHz:   freq,
		})
		if !ok {
			continue
		}
		snaps = append(snaps, phase.Snapshot{
			Time:        t,
			Phase:       obs.PhaseRad,
			RSSIdBm:     obs.RSSIdBm,
			FrequencyHz: freq,
			AntennaID:   s.Antenna.ID,
		})
	}
	return snaps, nil
}

// CalibrateOrientation runs the §III-B prelude for one install: the tag is
// re-mounted at the disk center, spun for the configured rotations while a
// bench antenna at a *known* azimuth interrogates it, and the
// phase-vs-orientation function is fitted from the samples.
func (s *Scenario) CalibrateOrientation(in Install, rng *rand.Rand) (*phase.OrientationCalibration, error) {
	sim, err := channel.NewSimulator(s.Channel, rng)
	if err != nil {
		return nil, err
	}
	center := in.Disk
	center.Mount = spindisk.MountCenter
	act, err := spindisk.NewActuator(center, s.Actuator, rng)
	if err != nil {
		return nil, err
	}
	readerAz := s.Antenna.Position.Sub(center.Center).Azimuth()
	duration := time.Duration(s.rotations() * float64(center.Period()))
	step := time.Duration(float64(time.Second) / s.readRate())
	var samples []phase.OrientationSample
	for t := time.Duration(0); t < duration; t += step {
		freq, err := s.frequency(rng)
		if err != nil {
			return nil, err
		}
		trueAngle := act.TrueAngle(t)
		obs, ok := sim.Observe(channel.Query{
			Tag:           in.Tag,
			TagPos:        act.TruePosition(trueAngle),
			TagPlaneAngle: center.TagPlaneAngle(trueAngle),
			Antenna:       s.Antenna,
			FrequencyHz:   freq,
		})
		if !ok {
			continue
		}
		samples = append(samples, phase.OrientationSample{
			Rho:   center.OrientationTo(center.Angle(t), readerAz),
			Phase: obs.PhaseRad,
		})
	}
	cal, err := phase.FitOrientation(samples, phase.DefaultOrientationOrder)
	if err != nil {
		return nil, fmt.Errorf("calibrate orientation: %w", err)
	}
	return &cal, nil
}

// CalibratedSpinningTags runs the orientation prelude for every install and
// returns registry entries with calibrations attached.
func (s *Scenario) CalibratedSpinningTags(rng *rand.Rand) ([]core.SpinningTag, error) {
	out := make([]core.SpinningTag, 0, len(s.Installs))
	for _, in := range s.Installs {
		cal, err := s.CalibrateOrientation(in, rng)
		if err != nil {
			return nil, fmt.Errorf("tag %s: %w", in.Tag.EPC, err)
		}
		out = append(out, core.SpinningTag{EPC: in.Tag.EPC, Disk: in.Disk, Orientation: cal})
	}
	return out, nil
}
