#!/bin/sh
# check-bce.sh — bounds-check-elimination spot check for the spectrum hot
# loops (make vet-strict).
#
# The all-cells kernels in internal/spectrum/allcells.go (synthesizeComplex,
# synthRowR, the Profile*Opt drivers) and the NUFFT kernels in
# internal/spectrum/nufft.go (gridSynth, the spreadComplex/spreadMag halo
# stencils, synthAtComplex) are written with explicit reslicing — the spread
# loops lean on the halo padding to take constant-length stencil slices — so
# the compiler can prove every per-element index in range and drop the
# bounds checks; a refactor that breaks that proof silently re-inserts a
# check per element per iteration in the hottest loops of the package. This
# script rebuilds the package with the compiler's check_bce diagnostic and
# fails if any per-element IsInBounds check survives in either file.
#
# IsSliceInBounds hits are allowed: those are the one-time reslices at
# function entry (s[:n] on pool-backed buffers whose capacity the compiler
# cannot know) — they run once per call, not once per element, and they are
# exactly the length facts that make the inner loops provable. Gating them
# would force removing the reslices that the real elimination depends on.
#
# Scope is deliberately just allcells.go and nufft.go: other files keep
# bounds checks in cold paths (setup, error handling) by design, and gating
# them would turn the check into noise.
set -eu

cd "$(dirname "$0")/.."

out=$(go build -gcflags='github.com/tagspin/tagspin/internal/spectrum=-d=ssa/check_bce/debug=1' ./internal/spectrum/ 2>&1 || true)

hits=$(printf '%s\n' "$out" | grep -E '(allcells|nufft)\.go.*IsInBounds' || true)
if [ -n "$hits" ]; then
    echo "check-bce: per-element bounds checks found in internal/spectrum hot loops (allcells.go/nufft.go):" >&2
    printf '%s\n' "$hits" >&2
    exit 1
fi
echo "check-bce: internal/spectrum allcells.go/nufft.go hot loops are bounds-check free"
