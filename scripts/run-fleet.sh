#!/bin/sh
# run-fleet.sh — bring up a minimal tagspin fleet on localhost:
#
#   tagspin-reader  (simulated LLRP reader, writes the shared registry)
#   tagspin-server  x2 (locsrv replicas, registered with the coordinator)
#   tagspin-coord   (consistent-hash router over the replicas)
#
# then smoke it: one locate routed through the coordinator and the
# cluster-stats rollup. Everything is torn down on exit (including ^C), so
# this doubles as a drain demo — the servers get SIGTERM and finish
# in-flight work before exiting.
#
# Usage: scripts/run-fleet.sh [keep]
#   keep  leave the fleet running until ^C instead of exiting after the smoke.
set -eu

READER_ADDR=127.0.0.1:5084
REPLICA_A=127.0.0.1:8081
REPLICA_B=127.0.0.1:8082
COORD_ADDR=127.0.0.1:8090
WORKDIR=$(mktemp -d "${TMPDIR:-/tmp}/tagspin-fleet.XXXXXX")
REGISTRY="$WORKDIR/registry.json"

PIDS=""
COORD_PID=""
cleanup() {
    # Replicas first so they can deregister while the coordinator still
    # answers; then the coordinator and reader.
    for pid in $PIDS; do kill -TERM "$pid" 2>/dev/null || true; done
    for pid in $PIDS; do wait "$pid" 2>/dev/null || true; done
    if [ -n "$COORD_PID" ]; then
        kill -TERM "$COORD_PID" 2>/dev/null || true
        wait "$COORD_PID" 2>/dev/null || true
    fi
    rm -rf "$WORKDIR"
}
trap cleanup EXIT INT TERM

echo "==> building fleet binaries"
go build -o "$WORKDIR/tagspin-reader" ./cmd/tagspin-reader
go build -o "$WORKDIR/tagspin-server" ./cmd/tagspin-server
go build -o "$WORKDIR/tagspin-coord" ./cmd/tagspin-coord

echo "==> starting simulated reader on $READER_ADDR"
"$WORKDIR/tagspin-reader" -addr "$READER_ADDR" -write-registry "$REGISTRY" &
PIDS="$PIDS $!"
while [ ! -s "$REGISTRY" ]; do sleep 0.1; done

echo "==> starting coordinator on $COORD_ADDR"
"$WORKDIR/tagspin-coord" -addr "$COORD_ADDR" &
COORD_PID=$!

echo "==> starting 2 locsrv replicas (register with coordinator)"
"$WORKDIR/tagspin-server" -addr "$REPLICA_A" -registry "$REGISTRY" -coord "$COORD_ADDR" &
PIDS="$PIDS $!"
"$WORKDIR/tagspin-server" -addr "$REPLICA_B" -registry "$REGISTRY" -coord "$COORD_ADDR" &
PIDS="$PIDS $!"

# Wait for the coordinator to see both replicas.
for _ in $(seq 1 50); do
    n=$(curl -fsS "http://$COORD_ADDR/v1/replicas" 2>/dev/null \
        | grep -o '"addr"' | wc -l) || n=0
    [ "$n" -ge 2 ] && break
    sleep 0.2
done
echo "==> routing table:"
curl -fsS "http://$COORD_ADDR/v1/replicas"; echo

echo "==> locate through the coordinator (routed by readerAddr)"
curl -fsS -X POST "http://$COORD_ADDR/v1/locate" \
    -H 'Content-Type: application/json' \
    -d "{\"readerAddr\":\"$READER_ADDR\"}"; echo

echo "==> cluster-stats rollup"
curl -fsS "http://$COORD_ADDR/v1/cluster-stats"; echo

if [ "${1:-}" = keep ]; then
    echo "==> fleet up: coordinator http://$COORD_ADDR, replicas $REPLICA_A $REPLICA_B (^C to drain and exit)"
    wait
fi
echo "==> smoke passed; draining fleet"
