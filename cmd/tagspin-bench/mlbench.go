package main

import (
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"

	"github.com/tagspin/tagspin/internal/core"
	"github.com/tagspin/tagspin/internal/estimate"
	"github.com/tagspin/tagspin/internal/geom"
	"github.com/tagspin/tagspin/internal/testbed"
)

// mlTrials is the size of the accuracy sweep behind each MLLocate row's
// meanErrM. Small on purpose: the rows exist to pin the grid-vs-ML A/B over
// time, not to re-run the EXPERIMENTS error study (see experiment X2).
const mlTrials = 8

// mlBenchRows measures the grid and joint-ML solve backends end to end
// (schema 5): MLLocate2D/{grid,ml} and MLLocate3D/{grid,ml} rows time a full
// Locate call — shared spectrum peak search plus backend solve — over the
// same observations, and carry the mean localization error of a small
// multi-placement sweep so the A/B covers accuracy as well as cost.
func mlBenchRows() ([]benchResult, error) {
	rng := rand.New(rand.NewSource(11))
	sc := testbed.DefaultScenario(0, rng)
	sc.PlaceReader(geom.V3(-1.9, 1.4, 0))
	registered, err := sc.CalibratedSpinningTags(rng)
	if err != nil {
		return nil, err
	}
	col, err := sc.Collect(rng)
	if err != nil {
		return nil, err
	}

	grid := core.NewLocator(core.Config{})
	ml := grid.WithEstimator(estimate.NewML(estimate.Config{}))
	backends := []struct {
		name string
		loc  *core.Locator
	}{{"grid", grid}, {"ml", ml}}

	// Accuracy sweep: the same placements and observations for both
	// backends, 2D targets in the survey plane and 3D targets above it
	// (where the default grid z-policy is on its home turf).
	errs2D := map[string][]float64{}
	errs3D := map[string][]float64{}
	for i := 0; i < mlTrials; i++ {
		target := geom.V3(-2.5+rng.Float64()*5, 1.0+rng.Float64()*1.5, 0)
		sc.PlaceReader(target)
		tcol, err := sc.Collect(rng)
		if err != nil {
			return nil, err
		}
		for _, be := range backends {
			res, err := be.loc.Locate2D(registered, tcol.Obs)
			if err != nil {
				return nil, err
			}
			errs2D[be.name] = append(errs2D[be.name], res.Position.DistanceTo(target.XY()))
		}
		target3 := geom.V3(-2+rng.Float64()*4, 1.2+rng.Float64()*1.2, 0.3+rng.Float64()*0.8)
		sc.PlaceReader(target3)
		tcol, err = sc.Collect(rng)
		if err != nil {
			return nil, err
		}
		for _, be := range backends {
			res, err := be.loc.Locate3D(registered, tcol.Obs)
			if err != nil {
				return nil, err
			}
			errs3D[be.name] = append(errs3D[be.name], res.Position.DistanceTo(target3))
		}
	}

	var rows []benchResult
	procs := runtime.GOMAXPROCS(0)
	for _, be := range backends {
		loc := be.loc
		res2 := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := loc.Locate2D(registered, col.Obs); err != nil {
					b.Fatal(err)
				}
			}
		})
		rows = append(rows, benchResult{
			Name:        "MLLocate2D/" + be.name,
			Iterations:  res2.N,
			NsPerOp:     float64(res2.T.Nanoseconds()) / float64(res2.N),
			AllocsPerOp: res2.AllocsPerOp(),
			BytesPerOp:  res2.AllocedBytesPerOp(),
			GoMaxProcs:  procs,
			Variant:     be.name,
			MeanErrM:    mean(errs2D[be.name]),
		})
		res3 := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := loc.Locate3D(registered, col.Obs); err != nil {
					b.Fatal(err)
				}
			}
		})
		rows = append(rows, benchResult{
			Name:        "MLLocate3D/" + be.name,
			Iterations:  res3.N,
			NsPerOp:     float64(res3.T.Nanoseconds()) / float64(res3.N),
			AllocsPerOp: res3.AllocsPerOp(),
			BytesPerOp:  res3.AllocedBytesPerOp(),
			GoMaxProcs:  procs,
			Variant:     be.name,
			MeanErrM:    mean(errs3D[be.name]),
		})
	}
	for _, r := range rows {
		fmt.Fprintf(os.Stderr, "tagspin-bench: %-28s %14s procs=%-2d %12.0f ns/op  meanErr %.1f cm\n",
			r.Name, r.Variant, r.GoMaxProcs, r.NsPerOp, r.MeanErrM*100)
	}
	return rows, nil
}

// mean averages xs; zero for an empty slice.
func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
