package main

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"testing"

	"github.com/tagspin/tagspin/internal/gen2"
	"github.com/tagspin/tagspin/internal/geom"
	"github.com/tagspin/tagspin/internal/phase"
	"github.com/tagspin/tagspin/internal/spectrum"
	"github.com/tagspin/tagspin/internal/spindisk"
	"github.com/tagspin/tagspin/internal/testbed"
)

// nufftMinSpeedup is the acceptance floor for the gated NUFFT coarse-scan
// row: the fold + oversampled-grid spread must beat the dense non-uniform
// scan by at least this factor on the jittered 720-cell grid. It matches
// the all-cells profile floor — the NUFFT replaces the same O(cells·terms)
// trig with O(terms·H + U·H + cells·W) work, and the dense baseline it is
// paired with runs on the full parallel pool.
const nufftMinSpeedup = 3.0

// nufftBenchAngles is the benchmark candidate grid: the uniform 720-cell
// circle with every point displaced by up to 35% of the spacing (seeded, so
// every report measures the same grid), sorted like a real survey grid.
func nufftBenchAngles() []float64 {
	rng := rand.New(rand.NewSource(41))
	const n = 720
	step := 2 * math.Pi / float64(n)
	angles := make([]float64, n)
	for i := range angles {
		angles[i] = (float64(i) + 0.35*(2*rng.Float64()-1)) * step
	}
	sort.Float64s(angles)
	return angles
}

// nufftBenchRows measures the non-uniform-grid coarse scans (schema 8).
// The session is deliberately the ugly one the NUFFT route exists for: a
// jittery actuator (JitterStd 0.02 rad) read through the Gen2 MAC, so the
// aperture samples are non-uniform in time, localized over the jittered
// candidate grid. DenseLocateNU2D / NUFFTLocate2D pair the dense angle-grid
// scan with the NUFFT route for KindQ (the NUFFT row is gated at
// nufftMinSpeedup); DenseLocateNUR / NUFFTLocateR are the KindR pair,
// reported ungated — pass two of the R replay still walks every term per
// cell, so its ratio is informative rather than enforced.
//
// Before any timing, both pairs re-check what the spectrum test suite pins:
// the NUFFT argmax equals the dense argmax bit for bit on this exact
// session and grid, and the spread Q profile sits within the exported slack
// of the dense one — a speedup row can never quietly measure a path that
// stopped agreeing.
func nufftBenchRows() ([]benchResult, error) {
	rng := rand.New(rand.NewSource(23))
	sc := testbed.DefaultScenario(0, rng)
	sc.Installs = sc.Installs[:1]
	sc.Actuator = spindisk.ActuatorConfig{JitterStd: 0.02}
	sc.Gen2 = &gen2.Config{}
	sc.PlaceReader(geom.V3(-2.2, 1.3, 0))
	col, err := sc.Collect(rng)
	if err != nil {
		return nil, err
	}
	snaps := col.Obs[sc.Installs[0].Tag.EPC]
	phase.SortByTime(snaps)
	params := spectrum.Params{Disk: sc.Installs[0].Disk}
	evQ, err := spectrum.NewEvaluator(snaps, params, spectrum.KindQ)
	if err != nil {
		return nil, err
	}
	evR, err := spectrum.NewEvaluator(snaps, params, spectrum.KindR)
	if err != nil {
		return nil, err
	}
	angles := nufftBenchAngles()

	denseOpts := spectrum.SearchOptions{Refinements: spectrum.NoRefine, NUFFT: spectrum.ToggleOff}
	nufftOpts := spectrum.SearchOptions{Refinements: spectrum.NoRefine}

	// Preflight 1: NUFFT argmax bit-identity against the dense scan, both
	// kinds, on the measured session and grid.
	for _, pre := range []struct {
		kind string
		ev   *spectrum.Evaluator
	}{{"Q", evQ}, {"R", evR}} {
		wantAz, wantPow := spectrum.FindPeak2DAnglesEval(pre.ev, angles, denseOpts)
		gotAz, gotPow := spectrum.FindPeak2DAnglesEval(pre.ev, angles, nufftOpts)
		if gotAz != wantAz || gotPow != wantPow {
			return nil, fmt.Errorf("nufft bench: %s NUFFT peak (%v, %v) != dense (%v, %v)",
				pre.kind, gotAz, gotPow, wantAz, wantPow)
		}
	}
	// Preflight 2: the spread Q profile within the exported slack.
	var dense, spread spectrum.Profile
	evQ.Profile2DInto(&dense, angles)
	evQ.Profile2DIntoOpt(&spread, angles, spectrum.SearchOptions{})
	for k := range dense.Power {
		if d := math.Abs(spread.Power[k] - dense.Power[k]); d > spectrum.ProfileSlackQ {
			return nil, fmt.Errorf("nufft bench: Q profile cell %d off by %v (> %v)",
				k, d, spectrum.ProfileSlackQ)
		}
	}

	var sink float64
	peak := func(ev *spectrum.Evaluator, opts spectrum.SearchOptions) func(b *testing.B) {
		return func(b *testing.B) {
			spectrum.FindPeak2DAnglesEval(ev, angles, opts) // warm pools
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				az, pow := spectrum.FindPeak2DAnglesEval(ev, angles, opts)
				sink = az + pow
			}
		}
	}

	cases := []struct {
		name     string
		variant  string
		pairWith int
		gated    bool
		fn       func(b *testing.B)
	}{
		{"DenseLocateNU2D", "dense/exact", -1, true, peak(evQ, denseOpts)},
		{"NUFFTLocate2D", "nufft/exact", 0, true, peak(evQ, nufftOpts)},
		{"DenseLocateNUR", "dense/exact", -1, false, peak(evR, denseOpts)},
		{"NUFFTLocateR", "nufft/exact", 2, false, peak(evR, nufftOpts)},
	}
	procs := runtime.GOMAXPROCS(0)
	rows := make([]benchResult, 0, len(cases))
	for _, c := range cases {
		res := testing.Benchmark(c.fn)
		ns := float64(res.T.Nanoseconds()) / float64(res.N)
		if c.gated && !raceEnabled {
			for rep := 0; rep < 2; rep++ {
				r := testing.Benchmark(c.fn)
				if v := float64(r.T.Nanoseconds()) / float64(r.N); v < ns {
					res, ns = r, v
				}
			}
		}
		rows = append(rows, benchResult{
			Name:        c.name,
			Iterations:  res.N,
			NsPerOp:     ns,
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
			GoMaxProcs:  procs,
			Variant:     c.variant,
		})
	}
	_ = sink
	for i, c := range cases {
		if c.pairWith >= 0 {
			rows[i].SpeedupVsBatch = rows[c.pairWith].NsPerOp / rows[i].NsPerOp
		}
	}
	for _, r := range rows {
		extra := ""
		if r.SpeedupVsBatch > 0 {
			extra = fmt.Sprintf("  %.1fx vs dense", r.SpeedupVsBatch)
		}
		fmt.Fprintf(os.Stderr, "tagspin-bench: %-28s %14s procs=%-2d %12.0f ns/op %6d allocs/op%s\n",
			r.Name, r.Variant, r.GoMaxProcs, r.NsPerOp, r.AllocsPerOp, extra)
	}
	// The floor is calibrated for un-instrumented builds (race instrumentation
	// taxes the rescore loop hardest); bench-compare re-checks the recorded
	// ratio on every snapshot.
	if !raceEnabled && rows[1].SpeedupVsBatch < nufftMinSpeedup {
		return nil, fmt.Errorf("nufft bench: NUFFTLocate2D speedup %.1fx below the %.0fx floor",
			rows[1].SpeedupVsBatch, nufftMinSpeedup)
	}
	return rows, nil
}
