package main

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"testing"

	"github.com/tagspin/tagspin/internal/geom"
	"github.com/tagspin/tagspin/internal/mathx"
	"github.com/tagspin/tagspin/internal/phase"
	"github.com/tagspin/tagspin/internal/spectrum"
	"github.com/tagspin/tagspin/internal/testbed"
)

// subLinRMinSpeedup is the acceptance floor for the KindR sub-linear coarse
// scan: the two-pass harmonic R evaluator must beat the dense R scan by at
// least this factor on the default grid. It sits below the Q floor because
// R's pass two still walks every term per cell — the win is dropping the
// per-cell sincos/exp/mod, not the term loop itself.
const subLinRMinSpeedup = 4.0

// allCellsMinSpeedup is the acceptance floor for the gated full-profile
// rows: the AllCellsProfile2D/Q synthesis must beat the dense exact profile
// scan by at least this factor. Like the coarse-scan floors, the row
// generator enforces it at measurement time and bench-compare re-checks the
// recorded ratio on every snapshot.
const allCellsMinSpeedup = 3.0

// allCellsBenchRows measures the all-cells transform against its dense
// baselines (schema 7). The SubLinLocateR pair is the KindR counterpart of
// schema 6's Locate2D/SubLinLocate2D: coarse-only argmax (NoRefine), dense
// toggles off versus the default-on harmonic route. The profile pairs time
// the full-profile entry points: Profile2DInto / Profile3D (dense, exact
// trig) versus Profile2DIntoOpt / Profile3DOpt (fold + synthesis), per kind.
// Each AllCells/SubLin row carries speedupVsBatch against the dense row
// measured immediately before it.
//
// Before any timing, the rows re-check what the spectrum test suite pins:
// the sub-linear R argmax equals the dense argmax bit for bit, and every
// synthesized profile cell sits within the kind's exported slack
// (spectrum.ProfileSlackQ / ProfileSlackR) of the dense value — so a speedup
// row can never quietly measure a path that stopped agreeing.
func allCellsBenchRows() ([]benchResult, error) {
	rng := rand.New(rand.NewSource(17))
	sc := testbed.DefaultScenario(0, rng)
	sc.Installs = sc.Installs[:1]
	sc.PlaceReader(geom.V3(-2.2, 1.3, 0))
	col, err := sc.Collect(rng)
	if err != nil {
		return nil, err
	}
	snaps := col.Obs[sc.Installs[0].Tag.EPC]
	phase.SortByTime(snaps)
	params := spectrum.Params{Disk: sc.Installs[0].Disk}
	evQ, err := spectrum.NewEvaluator(snaps, params, spectrum.KindQ)
	if err != nil {
		return nil, err
	}
	evR, err := spectrum.NewEvaluator(snaps, params, spectrum.KindR)
	if err != nil {
		return nil, err
	}

	denseOpts := spectrum.SearchOptions{
		Refinements:  spectrum.NoRefine,
		HarmonicEval: spectrum.ToggleOff,
		Hierarchical: spectrum.ToggleOff,
	}
	subOpts := spectrum.SearchOptions{Refinements: spectrum.NoRefine}
	angles := spectrum.UniformAngles(720)
	az3 := spectrum.UniformAngles(180)
	pol3 := mathx.Linspace(-math.Pi/2, math.Pi/2, 31)

	// Preflight 1: R sub-linear argmax bit-identity against the dense scan.
	wantAz, wantPow := spectrum.FindPeak2DEval(evR, denseOpts)
	if gotAz, gotPow := spectrum.FindPeak2DEval(evR, subOpts); gotAz != wantAz || gotPow != wantPow {
		return nil, fmt.Errorf("allcells bench: R sub-linear peak (%v, %v) != dense (%v, %v)",
			gotAz, gotPow, wantAz, wantPow)
	}
	// Preflight 2: profile synthesis within the exported slack, per kind,
	// 2D and 3D.
	checkProfile := func(kind string, slack float64, got, want []float64) error {
		for k := range want {
			if d := math.Abs(got[k] - want[k]); d > slack {
				return fmt.Errorf("allcells bench: %s profile cell %d off by %v (> %v)", kind, k, d, slack)
			}
		}
		return nil
	}
	for _, pre := range []struct {
		kind  string
		slack float64
		ev    *spectrum.Evaluator
	}{
		{"Q", spectrum.ProfileSlackQ, evQ},
		{"R", spectrum.ProfileSlackR, evR},
	} {
		dense := pre.ev.Profile2D(angles)
		synth := pre.ev.Profile2DOpt(angles, spectrum.SearchOptions{})
		if err := checkProfile(pre.kind+"/2D", pre.slack, synth.Power, dense.Power); err != nil {
			return nil, err
		}
		dense3 := pre.ev.Profile3D(az3, pol3)
		synth3 := pre.ev.Profile3DOpt(az3, pol3, spectrum.SearchOptions{})
		for i := range dense3.Power {
			if err := checkProfile(pre.kind+"/3D", pre.slack, synth3.Power[i], dense3.Power[i]); err != nil {
				return nil, err
			}
		}
	}

	var sink float64
	peakR := func(opts spectrum.SearchOptions) func(b *testing.B) {
		return func(b *testing.B) {
			spectrum.FindPeak2DEval(evR, opts) // warm pools and plan cache
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				az, pow := spectrum.FindPeak2DEval(evR, opts)
				sink = az + pow
			}
		}
	}
	profDense := func(ev *spectrum.Evaluator) func(b *testing.B) {
		return func(b *testing.B) {
			var prof spectrum.Profile
			ev.Profile2DInto(&prof, angles)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ev.Profile2DInto(&prof, angles)
			}
		}
	}
	profSynth := func(ev *spectrum.Evaluator) func(b *testing.B) {
		return func(b *testing.B) {
			var prof spectrum.Profile
			ev.Profile2DIntoOpt(&prof, angles, spectrum.SearchOptions{})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ev.Profile2DIntoOpt(&prof, angles, spectrum.SearchOptions{})
			}
		}
	}
	prof3Dense := func(ev *spectrum.Evaluator) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ev.Profile3D(az3, pol3)
			}
		}
	}
	prof3Synth := func(ev *spectrum.Evaluator) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ev.Profile3DOpt(az3, pol3, spectrum.SearchOptions{})
			}
		}
	}

	cases := []struct {
		name    string
		variant string
		// pairWith, when ≥ 0, is the index of the dense baseline this row's
		// speedupVsBatch is computed against.
		pairWith int
		// gated marks rows whose timing feeds a speedup floor (either side
		// of a gated ratio); those are measured best-of-3 to keep a stray
		// scheduler stall on the shared CPU from failing the gate or, worse,
		// inflating a baseline and passing a regression.
		gated bool
		fn    func(b *testing.B)
	}{
		{"LocateR", "dense/exact", -1, true, peakR(denseOpts)},
		{"SubLinLocateR", "harmonic/exact", 0, true, peakR(subOpts)},
		{"DenseProfile2D/Q", "dense/exact", -1, true, profDense(evQ)},
		{"AllCellsProfile2D/Q", "harmonic/exact", 2, true, profSynth(evQ)},
		{"DenseProfile2D/R", "dense/exact", -1, false, profDense(evR)},
		{"AllCellsProfile2D/R", "harmonic/exact", 4, false, profSynth(evR)},
		{"DenseProfile3D/Q", "dense/exact", -1, false, prof3Dense(evQ)},
		{"AllCellsProfile3D/Q", "harmonic/exact", 6, false, prof3Synth(evQ)},
		{"DenseProfile3D/R", "dense/exact", -1, false, prof3Dense(evR)},
		{"AllCellsProfile3D/R", "harmonic/exact", 8, false, prof3Synth(evR)},
	}
	procs := runtime.GOMAXPROCS(0)
	rows := make([]benchResult, 0, len(cases))
	for _, c := range cases {
		res := testing.Benchmark(c.fn)
		ns := float64(res.T.Nanoseconds()) / float64(res.N)
		if c.gated && !raceEnabled {
			for rep := 0; rep < 2; rep++ {
				r := testing.Benchmark(c.fn)
				if v := float64(r.T.Nanoseconds()) / float64(r.N); v < ns {
					res, ns = r, v
				}
			}
		}
		rows = append(rows, benchResult{
			Name:        c.name,
			Iterations:  res.N,
			NsPerOp:     ns,
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
			GoMaxProcs:  procs,
			Variant:     c.variant,
		})
	}
	_ = sink
	for i, c := range cases {
		if c.pairWith >= 0 {
			rows[i].SpeedupVsBatch = rows[c.pairWith].NsPerOp / rows[i].NsPerOp
		}
	}
	for _, r := range rows {
		extra := ""
		if r.SpeedupVsBatch > 0 {
			extra = fmt.Sprintf("  %.1fx vs dense", r.SpeedupVsBatch)
		}
		fmt.Fprintf(os.Stderr, "tagspin-bench: %-28s %14s procs=%-2d %12.0f ns/op %6d allocs/op%s\n",
			r.Name, r.Variant, r.GoMaxProcs, r.NsPerOp, r.AllocsPerOp, extra)
	}
	// Race instrumentation compresses the ratios the same way it does for
	// SubLinLocate2D (the rescore and pass-two loops take the tax hardest);
	// the floors are calibrated for un-instrumented builds and re-checked by
	// bench-compare on every recorded snapshot.
	if !raceEnabled {
		if rows[1].SpeedupVsBatch < subLinRMinSpeedup {
			return nil, fmt.Errorf("allcells bench: SubLinLocateR speedup %.1fx below the %.0fx floor",
				rows[1].SpeedupVsBatch, subLinRMinSpeedup)
		}
		if rows[3].SpeedupVsBatch < allCellsMinSpeedup {
			return nil, fmt.Errorf("allcells bench: AllCellsProfile2D/Q speedup %.1fx below the %.0fx floor",
				rows[3].SpeedupVsBatch, allCellsMinSpeedup)
		}
	}
	return rows, nil
}
