package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListAndSelect(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatalf("-list: %v", err)
	}
	// T1 is static and instant; a tiny F4 exercises the harness path.
	if err := run([]string{"-run", "T1,F4", "-trials", "2"}); err != nil {
		t.Fatalf("-run: %v", err)
	}
}

func TestUnknownExperiment(t *testing.T) {
	if err := run([]string{"-run", "F99"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// TestBenchJSON exercises the machine-readable perf report end to end: the
// file must parse, carry every expected benchmark with provenance, and show
// the zero-alloc steady state of the evaluation engine.
func TestBenchJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmarks take seconds")
	}
	path := filepath.Join(t.TempDir(), "BENCH_2.json")
	if err := run([]string{"-benchjson", path}); err != nil {
		t.Fatalf("-benchjson: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report benchReport
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	if report.Schema != benchSchema {
		t.Errorf("schema = %q, want %q", report.Schema, benchSchema)
	}
	if report.NumCPU <= 0 {
		t.Errorf("numCPU = %d, want > 0", report.NumCPU)
	}
	rows := map[string]benchResult{}
	for _, b := range report.Benchmarks {
		if b.Iterations <= 0 || b.NsPerOp <= 0 {
			t.Errorf("benchmark %s has empty measurements: %+v", b.Name, b)
		}
		if b.GoMaxProcs <= 0 {
			t.Errorf("benchmark %s lacks per-row GOMAXPROCS: %+v", b.Name, b)
		}
		if b.Variant == "" {
			t.Errorf("benchmark %s lacks a variant label", b.Name)
		}
		if b.GoMaxProcs == 1 {
			rows[b.Name] = b
		}
	}
	for _, name := range []string{
		"EvalAtQ", "EvalAtR", "EvalAtRFast",
		"Profile2DR", "Profile2DRFast", "Profile2DQFast",
		"Profile3DCoarseSerial", "Profile3DCoarseParallel", "Profile3DCoarseParallelFast",
		"FindPeak2DR", "FindPeak2DRFast",
	} {
		if _, ok := rows[name]; !ok {
			t.Errorf("missing benchmark %q at GOMAXPROCS=1", name)
		}
	}
	// The acceptance property of the evaluation engine: steady-state
	// candidate evaluations, whole profile scans, and whole peak searches
	// allocate nothing.
	if raceEnabled {
		t.Log("race-detector instrumentation allocates; skipping 0-alloc assertions")
		return
	}
	for _, name := range []string{"EvalAtQ", "EvalAtR", "EvalAtRFast", "Profile2DR", "Profile2DRFast", "FindPeak2DR", "FindPeak2DRFast"} {
		if b, ok := rows[name]; ok && b.AllocsPerOp != 0 {
			t.Errorf("%s allocates %d per op, want 0", name, b.AllocsPerOp)
		}
	}
}

// writeReport marshals a report to dir/name for the compare tests.
func writeReport(t *testing.T, dir, name string, report benchReport) string {
	t.Helper()
	data, err := json.Marshal(report)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestBenchCompare pins the regression gate: schema-1 files must still
// parse (their rows inherit the report-level GOMAXPROCS), improvements and
// runner-noise wobbles pass, and a slowdown past regressionTolerance
// fails.
func TestBenchCompare(t *testing.T) {
	dir := t.TempDir()
	v1 := benchReport{
		Schema:     "tagspin-bench/1",
		GoVersion:  "go1.24.0",
		GoMaxProcs: 1,
		Benchmarks: []benchResult{
			{Name: "EvalAtR", Iterations: 100, NsPerOp: 20000},
			{Name: "Profile2DR", Iterations: 100, NsPerOp: 13_000_000},
			{Name: "Retired", Iterations: 100, NsPerOp: 1000},
		},
	}
	improved := benchReport{
		Schema:     benchSchema,
		GoVersion:  "go1.24.0",
		NumCPU:     1,
		GoMaxProcs: 1,
		Benchmarks: []benchResult{
			{Name: "EvalAtR", Iterations: 100, NsPerOp: 25000, GoMaxProcs: 1, Variant: "serial/exact"}, // +25%: inside the drift-calibrated tolerance
			{Name: "Profile2DR", Iterations: 100, NsPerOp: 9_000_000, GoMaxProcs: 1, Variant: "parallel/exact"},
			{Name: "Profile2DRFast", Iterations: 100, NsPerOp: 4_000_000, GoMaxProcs: 1, Variant: "parallel/fast"}, // new: never gates
		},
	}
	oldPath := writeReport(t, dir, "BENCH_1.json", v1)
	newPath := writeReport(t, dir, "BENCH_2.json", improved)
	if err := compareBenchJSON(oldPath + "," + newPath); err != nil {
		t.Errorf("improvement flagged as regression: %v", err)
	}

	regressed := improved
	regressed.Benchmarks = []benchResult{
		{Name: "EvalAtR", Iterations: 100, NsPerOp: 40000, GoMaxProcs: 1, Variant: "serial/exact"}, // +100% vs BENCH_1, +60% vs BENCH_2
		{Name: "Profile2DR", Iterations: 100, NsPerOp: 9_000_000, GoMaxProcs: 1, Variant: "parallel/exact"},
	}
	regPath := writeReport(t, dir, "BENCH_3.json", regressed)
	err := compareBenchJSON(oldPath + "," + regPath)
	if err == nil {
		t.Fatal("100% regression passed the gate")
	}
	if !strings.Contains(err.Error(), "EvalAtR") {
		t.Errorf("regression error does not name the benchmark: %v", err)
	}

	// p99 rows gate at the wider p99Tolerance, not the mean's 10%:
	// order-statistic jitter passes, a genuine tail blowup fails. (The
	// file names stay outside the BENCH_<n>.json pattern so the auto
	// discovery below still picks 2 vs 3.)
	loadRow := func(p99 float64) benchReport {
		return benchReport{
			Schema:     benchSchema,
			GoMaxProcs: 1,
			Benchmarks: []benchResult{{
				Name: "LoadLocate2D/K=1", Iterations: 100, NsPerOp: 2_000_000,
				GoMaxProcs: 1, LocatesPerSec: 480, P99Ns: p99,
			}},
		}
	}
	loadOld := writeReport(t, dir, "LOAD_OLD.json", loadRow(4_000_000))
	jitter := writeReport(t, dir, "LOAD_JITTER.json", loadRow(5_200_000)) // p99 +30%
	blowup := writeReport(t, dir, "LOAD_BLOWUP.json", loadRow(9_000_000)) // p99 +125%
	if err := compareBenchJSON(loadOld + "," + jitter); err != nil {
		t.Errorf("p99 jitter inside p99Tolerance flagged as regression: %v", err)
	}
	if err := compareBenchJSON(loadOld + "," + blowup); err == nil {
		t.Error("p99 tail blowup passed the gate")
	}

	// Auto-discovery picks the two highest-numbered files (2 vs 3 here):
	// both parse, Profile2DR matches, EvalAtR regressed.
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.Chdir(cwd); err != nil {
			t.Fatal(err)
		}
	}()
	if err := compareBenchJSON("auto"); err == nil {
		t.Error("auto compare missed the BENCH_2 -> BENCH_3 regression")
	}

	if err := compareBenchJSON("nope"); err == nil {
		t.Error("malformed spec accepted")
	}
}

// TestNewestBenchFile pins -rebaseline auto's target resolution: the
// highest-numbered BENCH_<n>.json in the directory.
func TestNewestBenchFile(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"BENCH_3.json", "BENCH_10.json", "BENCH_9.json", "notes.json"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := newestBenchFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if want := filepath.Join(dir, "BENCH_10.json"); got != want {
		t.Errorf("newestBenchFile = %q, want %q", got, want)
	}
	if _, err := newestBenchFile(t.TempDir()); err == nil {
		t.Error("empty dir accepted")
	}
}

// TestBenchCompareRebaselinedMarker verifies a report stamped by
// -rebaseline round-trips and still compares cleanly: the marker is
// informational, not a schema break.
func TestBenchCompareRebaselinedMarker(t *testing.T) {
	dir := t.TempDir()
	base := benchReport{
		Schema:      benchSchema,
		GoVersion:   "go1.24.0",
		NumCPU:      1,
		GoMaxProcs:  1,
		Rebaselined: true,
		Benchmarks: []benchResult{
			{Name: "EvalAtR", Iterations: 100, NsPerOp: 20000, GoMaxProcs: 1, Variant: "serial/exact"},
			{Name: "MLLocate2D/ml", Iterations: 10, NsPerOp: 5_000_000, GoMaxProcs: 1, Variant: "ml", MeanErrM: 0.05},
		},
	}
	next := base
	next.Rebaselined = false
	oldPath := writeReport(t, dir, "BENCH_5.json", base)
	newPath := writeReport(t, dir, "BENCH_6.json", next)
	if err := compareBenchJSON(oldPath + "," + newPath); err != nil {
		t.Errorf("rebaselined baseline failed to compare: %v", err)
	}
	parsed, err := readBenchReport(oldPath)
	if err != nil {
		t.Fatal(err)
	}
	if !parsed.Rebaselined {
		t.Error("rebaselined marker lost in round-trip")
	}
	if parsed.Benchmarks[1].MeanErrM != 0.05 {
		t.Errorf("meanErrM lost: %+v", parsed.Benchmarks[1])
	}
}

// TestBenchCompareNewRowsWarnNotFail pins the cross-schema contract the
// fleet rows depend on: a newer report whose rows are entirely absent from
// an older baseline — even rows with dreadful numbers — warns but never
// fails the gate. Older baselines simply predate new rows; gating them
// would force every schema addition through a rebaseline.
func TestBenchCompareNewRowsWarnNotFail(t *testing.T) {
	dir := t.TempDir()
	base := benchReport{
		Schema:     "tagspin-bench/1",
		GoVersion:  "go1.24.0",
		GoMaxProcs: 1,
		Benchmarks: []benchResult{
			{Name: "EvalAtR", Iterations: 100, NsPerOp: 20000},
		},
	}
	next := benchReport{
		Schema:     benchSchema,
		GoVersion:  "go1.24.0",
		NumCPU:     1,
		GoMaxProcs: 1,
		Benchmarks: []benchResult{
			// One stable row keeps the compare valid (an empty intersection
			// is its own error); the fleet rows don't match the baseline and
			// carry deliberately outrageous ns/op so an accidental gate
			// would trip loudly.
			{Name: "EvalAtR", Iterations: 100, NsPerOp: 20000, GoMaxProcs: 1, Variant: "serial/exact"},
			{Name: "FleetLocate2D", Iterations: 1, NsPerOp: 9e12, GoMaxProcs: 1, Variant: "fleet"},
			{Name: "FleetLocateBatch", Iterations: 1, NsPerOp: 9e12, GoMaxProcs: 4, Variant: "fleet"},
		},
	}
	oldPath := writeReport(t, dir, "BENCH_1.json", base)
	newPath := writeReport(t, dir, "BENCH_2.json", next)
	if err := compareBenchJSON(oldPath + "," + newPath); err != nil {
		t.Errorf("rows absent from the baseline gated the compare: %v", err)
	}
}
