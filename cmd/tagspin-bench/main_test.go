package main

import "testing"

func TestListAndSelect(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatalf("-list: %v", err)
	}
	// T1 is static and instant; a tiny F4 exercises the harness path.
	if err := run([]string{"-run", "T1,F4", "-trials", "2"}); err != nil {
		t.Fatalf("-run: %v", err)
	}
}

func TestUnknownExperiment(t *testing.T) {
	if err := run([]string{"-run", "F99"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}
