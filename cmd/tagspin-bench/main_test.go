package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestListAndSelect(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatalf("-list: %v", err)
	}
	// T1 is static and instant; a tiny F4 exercises the harness path.
	if err := run([]string{"-run", "T1,F4", "-trials", "2"}); err != nil {
		t.Fatalf("-run: %v", err)
	}
}

func TestUnknownExperiment(t *testing.T) {
	if err := run([]string{"-run", "F99"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// TestBenchJSON exercises the machine-readable perf report end to end: the
// file must parse, carry every expected benchmark, and show the zero-alloc
// steady state of the evaluation engine.
func TestBenchJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmarks take seconds")
	}
	path := filepath.Join(t.TempDir(), "BENCH_1.json")
	if err := run([]string{"-benchjson", path}); err != nil {
		t.Fatalf("-benchjson: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report benchReport
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	if report.Schema != "tagspin-bench/1" {
		t.Errorf("schema = %q", report.Schema)
	}
	rows := map[string]benchResult{}
	for _, b := range report.Benchmarks {
		rows[b.Name] = b
		if b.Iterations <= 0 || b.NsPerOp <= 0 {
			t.Errorf("benchmark %s has empty measurements: %+v", b.Name, b)
		}
	}
	for _, name := range []string{"EvalAtQ", "EvalAtR", "Profile2DR", "Profile3DCoarseSerial", "Profile3DCoarseParallel", "FindPeak2DR"} {
		if _, ok := rows[name]; !ok {
			t.Errorf("missing benchmark %q", name)
		}
	}
	// The acceptance property of the evaluation engine: steady-state
	// candidate evaluations allocate nothing.
	for _, name := range []string{"EvalAtQ", "EvalAtR"} {
		if b, ok := rows[name]; ok && b.AllocsPerOp != 0 {
			t.Errorf("%s allocates %d per op, want 0", name, b.AllocsPerOp)
		}
	}
}
