package main

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/tagspin/tagspin/internal/core"
	"github.com/tagspin/tagspin/internal/estimate"
	"github.com/tagspin/tagspin/internal/geom"
	"github.com/tagspin/tagspin/internal/phase"
	"github.com/tagspin/tagspin/internal/spectrum"
	"github.com/tagspin/tagspin/internal/tags"
	"github.com/tagspin/tagspin/internal/testbed"
)

// streamTailIters is how many times each tail latency (batch solve vs
// streaming finalize) is sampled per row.
const streamTailIters = 40

// streamSnapCap subsamples the benchmark scenario to at most this many
// snapshots per tag. It matches the coarse term limit the streaming
// accumulator can serve peaks from: above it the batch coarse pass switches
// to a strided term subset a streaming fold cannot reproduce, so the
// accumulator itself falls back to batch and there is nothing to measure.
const streamSnapCap = 64

// streamItem is one replayable snapshot of the flattened session.
type streamItem struct {
	epc  tags.EPC
	snap phase.Snapshot
}

// subsampleObs strides each tag's series down to at most cap snapshots.
func subsampleObs(obs core.Observations, cap int) core.Observations {
	out := make(core.Observations, len(obs))
	for epc, snaps := range obs {
		if len(snaps) <= cap {
			out[epc] = snaps
			continue
		}
		stride := (len(snaps) + cap - 1) / cap
		kept := make([]phase.Snapshot, 0, cap)
		for i := 0; i < len(snaps); i += stride {
			kept = append(kept, snaps[i])
		}
		out[epc] = kept
	}
	return out
}

// flattenObs orders the whole session the way the wire would deliver it.
func flattenObs(obs core.Observations) []streamItem {
	var items []streamItem
	for epc, snaps := range obs {
		for _, s := range snaps {
			items = append(items, streamItem{epc, s})
		}
	}
	sort.SliceStable(items, func(i, j int) bool { return items[i].snap.Time < items[j].snap.Time })
	return items
}

// streamBenchRows measures what streaming accumulation buys: the
// last-snapshot-to-answer latency. The batch rows time the full post-collect
// pipeline (evaluator build + coarse grid scan + refinement + solve); the
// stream rows pre-fold the same session through a core.Stream — work that
// overlaps collection in production — and time only Finalize2D. Row pairs
// share a StreamLocate2D/<kind> prefix and the stream row carries
// SpeedupVsBatch. The LoadLocate2DStream rows then run K concurrent
// full streaming pipelines (replay + finalize) for throughput context.
func streamBenchRows() ([]benchResult, error) {
	rng := rand.New(rand.NewSource(9))
	sc := testbed.DefaultScenario(0, rng)
	sc.PlaceReader(geom.V3(-2.2, 1.3, 0))
	col, err := sc.Collect(rng)
	if err != nil {
		return nil, err
	}
	obs := subsampleObs(col.Obs, streamSnapCap)
	items := flattenObs(obs)

	kinds := []struct {
		name string
		cfg  core.Config
	}{
		{"Q", core.Config{Kind: spectrum.KindQ, FastSpectrum: true}},
		{"Rlit", core.Config{LiteralReference: true, FastSpectrum: true}},
		{"RlitTopK", core.Config{
			LiteralReference: true,
			FastSpectrum:     true,
			Search:           spectrum.SearchOptions{PrescreenTopK: 8},
		}},
	}

	var rows []benchResult
	for _, k := range kinds {
		locator := core.NewLocator(k.cfg)
		// One untimed pass of each shape validates the scenario, warms the
		// pools, and checks the streamed answer matches batch.
		want, err := locator.Locate2D(col.Registered, obs)
		if err != nil {
			return nil, fmt.Errorf("stream bench %s: %w", k.name, err)
		}
		got, err := runStreamOnce(locator, col.Registered, items, obs, nil)
		if err != nil {
			return nil, fmt.Errorf("stream bench %s: %w", k.name, err)
		}
		if got.Position != want.Position {
			return nil, fmt.Errorf("stream bench %s: streamed position %v != batch %v", k.name, got.Position, want.Position)
		}

		// Median, not mean: one host-load burst during the 40 samples drags
		// a mean tens of percent on a shared runner, while the median holds
		// the typical last-snapshot-to-answer latency the rows exist to
		// track.
		batchSamples := make([]float64, streamTailIters)
		for i := range batchSamples {
			t0 := time.Now()
			if _, err := locator.Locate2D(col.Registered, obs); err != nil {
				return nil, err
			}
			batchSamples[i] = float64(time.Since(t0).Nanoseconds())
		}
		streamSamples := make([]float64, streamTailIters)
		for i := range streamSamples {
			var tail time.Duration
			if _, err := runStreamOnce(locator, col.Registered, items, obs, &tail); err != nil {
				return nil, err
			}
			streamSamples[i] = float64(tail.Nanoseconds())
		}
		batchNs := medianNs(batchSamples)
		streamNs := medianNs(streamSamples)

		procs := runtime.GOMAXPROCS(0)
		rows = append(rows,
			benchResult{
				Name:       "StreamLocate2D/" + k.name + "/batch",
				Iterations: streamTailIters,
				NsPerOp:    batchNs,
				GoMaxProcs: procs,
				Variant:    "tail/fast",
			},
			benchResult{
				Name:           "StreamLocate2D/" + k.name + "/stream",
				Iterations:     streamTailIters,
				NsPerOp:        streamNs,
				GoMaxProcs:     procs,
				Variant:        "tail/fast",
				SpeedupVsBatch: batchNs / streamNs,
			})
		fmt.Fprintf(os.Stderr,
			"tagspin-bench: %-28s %14s procs=%-2d %12.0f ns/op (batch tail)\n",
			"StreamLocate2D/"+k.name, "tail/fast", procs, batchNs)
		fmt.Fprintf(os.Stderr,
			"tagspin-bench: %-28s %14s procs=%-2d %12.0f ns/op (stream tail, %.1fx)\n",
			"", "", procs, streamNs, batchNs/streamNs)
	}

	loadRows, err := streamLoadRows(col.Registered, items, obs)
	if err != nil {
		return nil, err
	}
	return append(rows, loadRows...), nil
}

// medianNs returns the median of samples; it sorts in place.
func medianNs(samples []float64) float64 {
	sort.Float64s(samples)
	n := len(samples)
	if n%2 == 1 {
		return samples[n/2]
	}
	return (samples[n/2-1] + samples[n/2]) / 2
}

// runStreamOnce replays the session through a fresh Stream and finalizes.
// When tail is non-nil it receives the finalize-only duration — the
// streaming path's last-snapshot-to-answer latency.
func runStreamOnce(locator *core.Locator, registered []core.SpinningTag, items []streamItem, obs core.Observations, tail *time.Duration) (core.Result2D, error) {
	st := locator.NewStream2D(registered)
	defer st.Close()
	for _, it := range items {
		st.Report(it.epc, it.snap)
	}
	// A live session folds during network waits and ends with an empty
	// queue; replaying faster than real time piles the whole fold into the
	// finalize unless we drain first.
	st.Quiesce()
	t0 := time.Now()
	res, err := st.Finalize2D(context.Background(), obs)
	if tail != nil {
		*tail = time.Since(t0)
	}
	if err != nil {
		return core.Result2D{}, err
	}
	if stats := st.Stats(); stats.FallbackTags != 0 {
		return core.Result2D{}, fmt.Errorf("stream bench: %d tags fell back to batch", stats.FallbackTags)
	}
	return res, nil
}

// streamLoadRows is the loadBenchRows shape on the streaming pipeline: K
// goroutines each running complete replay+finalize cycles back to back.
// Throughput is bounded by total work (the fold cost does not vanish, it
// just moves off the tail), so these rows contextualize the tail rows rather
// than promise a throughput win. Like loadBenchRows, each K yields one row
// per solve backend — LoadLocate2DStream/K=<k> for the bearing-grid
// estimator (name unchanged since schema 4) and LoadLocate2DStream/ml/K=<k>
// for the joint maximum-likelihood backend (schema 8) — closing the
// estimator A/B over the streaming pipeline the batch load rows already had.
func streamLoadRows(registered []core.SpinningTag, items []streamItem, obs core.Observations) ([]benchResult, error) {
	grid := core.NewLocator(core.Config{LiteralReference: true, FastSpectrum: true})
	backends := []struct {
		prefix string
		loc    *core.Locator
	}{
		{"LoadLocate2DStream", grid},
		{"LoadLocate2DStream/ml", grid.WithEstimator(estimate.NewML(estimate.Config{}))},
	}
	var rows []benchResult
	for _, be := range backends {
		beRows, err := streamLoadBackendRows(be.loc, be.prefix, registered, items, obs)
		if err != nil {
			return nil, err
		}
		rows = append(rows, beRows...)
	}
	return rows, nil
}

// streamLoadBackendRows runs the K-sweep for one locator backend.
func streamLoadBackendRows(locator *core.Locator, prefix string, registered []core.SpinningTag, items []streamItem, obs core.Observations) ([]benchResult, error) {
	if _, err := runStreamOnce(locator, registered, items, obs, nil); err != nil {
		return nil, err
	}
	var rows []benchResult
	for _, k := range loadConcurrencies() {
		latencies := make([][]time.Duration, k)
		var wg sync.WaitGroup
		start := time.Now()
		deadline := start.Add(loadBenchDuration)
		for g := 0; g < k; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				lats := make([]time.Duration, 0, 4096)
				for time.Now().Before(deadline) {
					t0 := time.Now()
					if _, err := runStreamOnce(locator, registered, items, obs, nil); err != nil {
						panic(fmt.Sprintf("stream load bench failed: %v", err))
					}
					lats = append(lats, time.Since(t0))
				}
				latencies[g] = lats
			}(g)
		}
		wg.Wait()
		elapsed := time.Since(start)

		var all []time.Duration
		for _, lats := range latencies {
			all = append(all, lats...)
		}
		if len(all) == 0 {
			return nil, fmt.Errorf("stream load bench %s at K=%d completed no locates", prefix, k)
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		var total time.Duration
		for _, d := range all {
			total += d
		}
		row := benchResult{
			Name:          fmt.Sprintf("%s/K=%d", prefix, k),
			Iterations:    len(all),
			NsPerOp:       float64(total.Nanoseconds()) / float64(len(all)),
			GoMaxProcs:    runtime.GOMAXPROCS(0),
			Variant:       "load/stream",
			Concurrency:   k,
			LocatesPerSec: float64(len(all)) / elapsed.Seconds(),
			P50Ns:         float64(all[len(all)/2].Nanoseconds()),
			P99Ns:         float64(all[(len(all)*99)/100].Nanoseconds()),
		}
		rows = append(rows, row)
		fmt.Fprintf(os.Stderr,
			"tagspin-bench: %-28s %14s procs=%-2d %12.0f ns/op  %7.1f locates/s  p50=%.2fms p99=%.2fms\n",
			row.Name, row.Variant, row.GoMaxProcs, row.NsPerOp, row.LocatesPerSec,
			row.P50Ns/1e6, row.P99Ns/1e6)
	}
	return rows, nil
}
