package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// regressionTolerance is the ns/op slowdown a benchmark may show before the
// comparison fails. It is calibrated to the runner's measured same-code
// drift, not to wishful precision: two BENCH files are recorded minutes
// apart, and on a shared single-CPU runner a same-machine rebaseline
// compared against an immediate re-run of the identical binary has shown
// individual rows at +24% (EvalAtRFast) with three other rows past 10% —
// load drift on the host, with high-iteration rows affected as much as
// few-sample ones. A gate below that floor fails a random row most runs.
// 30% stays above the observed drift while still catching real
// regressions, and the accelerated paths have a far tighter guard that
// drift cannot touch: the speedupVsBatch floors compare dense and
// accelerated rows measured seconds apart inside one run.
const regressionTolerance = 0.30

// p99Tolerance is the wider gate for the load benches' p99 latency rows. A
// p99 is an order statistic of a few hundred locates, not a mean over
// b.N iterations: one scheduler stall during the run moves it tens of
// percent while the mean ns/op of the same row sits flat — on a shared
// single-CPU runner identical builds measure p99 swings of +10–80% run to
// run. The tail gate therefore trips only on genuine distribution-shape
// blowups (a lock convoy, a GC regression — 2× territory), and the mean
// gates on ns/op and locates/s keep catching uniform slowdowns.
const p99Tolerance = 0.50

// benchKey identifies a comparable measurement across reports: the stable
// benchmark name plus the GOMAXPROCS it ran under. Variant labels stay out
// of the key so schema-1 rows (which have none) line up with their schema-2
// successors.
type benchKey struct {
	name  string
	procs int
}

// readBenchReport parses a BENCH_*.json of any schema version (1 through
// 8). Schema-1 rows carry no per-row GOMAXPROCS; they inherit the
// report-level value so cross-schema keys align. Schema-3 load rows
// (concurrency, locates/sec, percentiles, plan-cache hit rate), schema-4
// streaming rows, schema-5 backend rows, schema-6 sub-linear rows,
// schema-7 all-cells rows, and schema-8 NUFFT + streaming-ml rows all
// decode into the same row struct; their extra fields are zero in older
// files.
func readBenchReport(path string) (benchReport, error) {
	var report benchReport
	data, err := os.ReadFile(path)
	if err != nil {
		return report, err
	}
	if err := json.Unmarshal(data, &report); err != nil {
		return report, fmt.Errorf("parse %s: %w", path, err)
	}
	if !strings.HasPrefix(report.Schema, "tagspin-bench/") {
		return report, fmt.Errorf("%s: unknown schema %q", path, report.Schema)
	}
	for i := range report.Benchmarks {
		if report.Benchmarks[i].GoMaxProcs == 0 {
			report.Benchmarks[i].GoMaxProcs = report.GoMaxProcs
		}
	}
	return report, nil
}

// speedupFloors maps ratio-carrying rows to the minimum speedupVsBatch the
// compare accepts; the same constants the row generators enforce at
// measurement time.
var speedupFloors = map[string]float64{
	"SubLinLocate2D":      subLinMinSpeedup,
	"SubLinLocateR":       subLinRMinSpeedup,
	"AllCellsProfile2D/Q": allCellsMinSpeedup,
	"NUFFTLocate2D":       nufftMinSpeedup,
}

var benchFilePattern = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// latestBenchFiles returns the two highest-numbered BENCH_<n>.json files in
// dir, oldest first.
func latestBenchFiles(dir string) (older, newer string, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", "", err
	}
	type numbered struct {
		n    int
		path string
	}
	var found []numbered
	for _, e := range entries {
		m := benchFilePattern.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		n, err := strconv.Atoi(m[1])
		if err != nil {
			continue
		}
		found = append(found, numbered{n, filepath.Join(dir, e.Name())})
	}
	if len(found) < 2 {
		return "", "", fmt.Errorf("need two BENCH_<n>.json files in %s, found %d", dir, len(found))
	}
	sort.Slice(found, func(i, j int) bool { return found[i].n < found[j].n })
	return found[len(found)-2].path, found[len(found)-1].path, nil
}

// newestBenchFile returns the highest-numbered BENCH_<n>.json in dir.
func newestBenchFile(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	best, bestN := "", -1
	for _, e := range entries {
		m := benchFilePattern.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		n, err := strconv.Atoi(m[1])
		if err != nil {
			continue
		}
		if n > bestN {
			best, bestN = filepath.Join(dir, e.Name()), n
		}
	}
	if best == "" {
		return "", fmt.Errorf("no BENCH_<n>.json files in %s", dir)
	}
	return best, nil
}

// rebaselineBench re-measures the full benchmark suite on the current
// machine and overwrites the chosen baseline file, marking the report
// `rebaselined: true`. This separates environment drift from real
// regressions: when the baseline snapshot was recorded on different
// hardware, a plain compare against it gates on the container change, not
// the code change — refreshing the baseline makes the compare same-machine
// on both sides. spec is a path or "auto": the comparison baseline, i.e.
// the older of the two newest BENCH_<n>.json in the working directory
// (drift lives on the baseline side), or the single newest when only one
// exists.
func rebaselineBench(spec string) error {
	path := spec
	if spec == "auto" {
		older, _, err := latestBenchFiles(".")
		if err != nil {
			older, err = newestBenchFile(".")
			if err != nil {
				return err
			}
		}
		path = older
	}
	fmt.Fprintf(os.Stderr, "tagspin-bench: rebaselining %s on this machine\n", path)
	return writeBenchJSON(path, true)
}

// compareBenchJSON diffs two bench reports and returns an error when any
// benchmark present in both regressed by more than regressionTolerance in
// ns/op. spec is either "old.json,new.json" or "auto" (the two
// highest-numbered BENCH_<n>.json in the working directory). Benchmarks
// present on only one side — rows a newer schema added, retired paths —
// warn but never fail: an older baseline simply predates them, and gating
// would force every schema bump through a rebaseline. The SubLinLocate2D,
// SubLinLocateR, AllCellsProfile2D/Q and NUFFTLocate2D rows additionally
// gate on their recorded speedupVsBatch staying at or above their floors
// (subLinMinSpeedup, subLinRMinSpeedup, allCellsMinSpeedup,
// nufftMinSpeedup), so an accelerated path that
// silently decays toward the dense scan fails the compare even when its own
// ns/op is stable (the other ratio-carrying rows report their ratio but only
// the row generator bounds them).
func compareBenchJSON(spec string) error {
	var oldPath, newPath string
	if spec == "auto" || spec == "" {
		var err error
		oldPath, newPath, err = latestBenchFiles(".")
		if err != nil {
			return err
		}
	} else {
		parts := strings.Split(spec, ",")
		if len(parts) != 2 {
			return fmt.Errorf("benchcompare wants 'old.json,new.json' or 'auto', got %q", spec)
		}
		oldPath, newPath = strings.TrimSpace(parts[0]), strings.TrimSpace(parts[1])
	}
	oldRep, err := readBenchReport(oldPath)
	if err != nil {
		return err
	}
	newRep, err := readBenchReport(newPath)
	if err != nil {
		return err
	}
	oldRows := make(map[benchKey]benchResult, len(oldRep.Benchmarks))
	for _, b := range oldRep.Benchmarks {
		oldRows[benchKey{b.Name, b.GoMaxProcs}] = b
	}
	fmt.Printf("bench-compare: %s (%s) -> %s (%s)\n", oldPath, oldRep.Schema, newPath, newRep.Schema)
	if oldRep.Rebaselined || newRep.Rebaselined {
		sides := "old side was"
		if newRep.Rebaselined && oldRep.Rebaselined {
			sides = "both sides were"
		} else if newRep.Rebaselined {
			sides = "new side was"
		}
		fmt.Printf("bench-compare: note: %s rebaselined on this machine — deltas reflect code, not environment drift\n", sides)
	}
	var regressions []string
	matched := 0
	for _, nb := range newRep.Benchmarks {
		if floor, gated := speedupFloors[nb.Name]; gated && nb.SpeedupVsBatch > 0 && nb.SpeedupVsBatch < floor {
			regressions = append(regressions,
				fmt.Sprintf("%s (procs=%d): %.1fx vs dense, below the %.0fx floor",
					nb.Name, nb.GoMaxProcs, nb.SpeedupVsBatch, floor))
		}
		key := benchKey{nb.Name, nb.GoMaxProcs}
		ob, ok := oldRows[key]
		if !ok {
			fmt.Printf("  %-28s procs=%-2d %12.0f ns/op  (warn: not in baseline, not gated)\n", nb.Name, nb.GoMaxProcs, nb.NsPerOp)
			continue
		}
		matched++
		delete(oldRows, key)
		change := nb.NsPerOp/ob.NsPerOp - 1
		fmt.Printf("  %-28s procs=%-2d %12.0f -> %12.0f ns/op  %+6.1f%%\n",
			nb.Name, nb.GoMaxProcs, ob.NsPerOp, nb.NsPerOp, change*100)
		if nb.LocatesPerSec > 0 && ob.LocatesPerSec > 0 {
			fmt.Printf("  %-28s          %12.1f -> %12.1f locates/s  (p99 %.2f -> %.2f ms)\n",
				"", ob.LocatesPerSec, nb.LocatesPerSec, ob.P99Ns/1e6, nb.P99Ns/1e6)
		}
		if change > regressionTolerance {
			regressions = append(regressions,
				fmt.Sprintf("%s (procs=%d): %.0f -> %.0f ns/op (%+.1f%%)",
					nb.Name, nb.GoMaxProcs, ob.NsPerOp, nb.NsPerOp, change*100))
		}
		// Load rows gate on their serving metrics too: a throughput drop or
		// a p99 tail blowup can hide behind a flat mean (ns/op) when the
		// latency distribution shifts shape.
		if nb.LocatesPerSec > 0 && ob.LocatesPerSec > 0 {
			if drop := 1 - nb.LocatesPerSec/ob.LocatesPerSec; drop > regressionTolerance {
				regressions = append(regressions,
					fmt.Sprintf("%s (procs=%d): %.1f -> %.1f locates/s (-%.1f%%)",
						nb.Name, nb.GoMaxProcs, ob.LocatesPerSec, nb.LocatesPerSec, drop*100))
			}
		}
		if nb.P99Ns > 0 && ob.P99Ns > 0 {
			if rise := nb.P99Ns/ob.P99Ns - 1; rise > p99Tolerance {
				regressions = append(regressions,
					fmt.Sprintf("%s (procs=%d): p99 %.2f -> %.2f ms (%+.1f%%)",
						nb.Name, nb.GoMaxProcs, ob.P99Ns/1e6, nb.P99Ns/1e6, rise*100))
			}
		}
	}
	for key := range oldRows {
		fmt.Printf("  %-28s procs=%-2d (only in %s)\n", key.name, key.procs, oldPath)
	}
	if matched == 0 {
		return fmt.Errorf("no comparable benchmarks between %s and %s", oldPath, newPath)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed >%.0f%%:\n  %s",
			len(regressions), regressionTolerance*100, strings.Join(regressions, "\n  "))
	}
	fmt.Printf("bench-compare: %d benchmark(s) compared, none regressed >%.0f%%\n", matched, regressionTolerance*100)
	return nil
}
