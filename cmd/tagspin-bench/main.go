// Command tagspin-bench regenerates the paper's tables and figures (and the
// ablations) from the simulated testbed and prints them as text reports.
//
// Usage:
//
//	tagspin-bench                 # run everything
//	tagspin-bench -run F10a,T2    # run selected experiments
//	tagspin-bench -list           # list experiment ids
//	tagspin-bench -trials 100     # override per-experiment trial counts
//	tagspin-bench -benchjson BENCH_6.json  # machine-readable spectrum perf
//	tagspin-bench -benchcompare auto       # regression-gate the two newest BENCH_*.json
//	tagspin-bench -rebaseline auto         # re-measure the comparison baseline on this machine
//	tagspin-bench -cpuprofile cpu.pprof -benchjson BENCH_6.json  # profile the run
//	tagspin-bench -memprofile mem.pprof -run T2                  # heap profile at exit
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"github.com/tagspin/tagspin/internal/experiment"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tagspin-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tagspin-bench", flag.ContinueOnError)
	var (
		runIDs       = fs.String("run", "all", "comma-separated experiment ids, or 'all'")
		list         = fs.Bool("list", false, "list experiment ids and exit")
		seed         = fs.Int64("seed", 0, "random seed")
		trials       = fs.Int("trials", 0, "override per-experiment trial counts (0 = defaults)")
		benchJSON    = fs.String("benchjson", "", "write spectrum micro-benchmark results (ns/op, allocs/op) as JSON to this file and exit")
		benchCompare = fs.String("benchcompare", "", "compare two bench reports ('old.json,new.json', or 'auto' for the two newest BENCH_<n>.json here) and fail on >10% ns/op regressions")
		rebaseline   = fs.String("rebaseline", "", "re-measure the benchmark suite on this machine and overwrite the given baseline file ('auto' = the older of the two newest BENCH_<n>.json here, the -benchcompare baseline), marking it rebaselined so bench-compare deltas reflect code rather than environment drift")
		cpuProfile   = fs.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
		memProfile   = fs.String("memprofile", "", "write a heap profile at exit to this file (go tool pprof)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close() //nolint:errcheck // profile already flushed by StopCPUProfile
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "tagspin-bench: memprofile:", err)
				return
			}
			defer f.Close() //nolint:errcheck // best-effort profile dump
			runtime.GC()    // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "tagspin-bench: memprofile:", err)
			}
		}()
	}
	if *benchJSON != "" {
		return writeBenchJSON(*benchJSON, false)
	}
	if *rebaseline != "" {
		return rebaselineBench(*rebaseline)
	}
	if *benchCompare != "" {
		return compareBenchJSON(*benchCompare)
	}
	if *list {
		for _, r := range experiment.All() {
			fmt.Printf("%-5s %s\n", r.ID, r.Title)
		}
		return nil
	}
	var runners []experiment.Runner
	if *runIDs == "all" || *runIDs == "" {
		runners = experiment.All()
	} else {
		for _, id := range strings.Split(*runIDs, ",") {
			r, err := experiment.ByID(strings.TrimSpace(id))
			if err != nil {
				return err
			}
			runners = append(runners, r)
		}
	}
	opts := experiment.Options{Seed: *seed, Trials: *trials}
	for _, r := range runners {
		start := time.Now()
		res, err := r.Run(opts)
		if err != nil {
			return fmt.Errorf("%s: %w", r.ID, err)
		}
		fmt.Print(res.Text())
		fmt.Printf("(%s in %v)\n\n", r.ID, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
