// Command tagspin-bench regenerates the paper's tables and figures (and the
// ablations) from the simulated testbed and prints them as text reports.
//
// Usage:
//
//	tagspin-bench                 # run everything
//	tagspin-bench -run F10a,T2    # run selected experiments
//	tagspin-bench -list           # list experiment ids
//	tagspin-bench -trials 100     # override per-experiment trial counts
//	tagspin-bench -benchjson BENCH_2.json  # machine-readable spectrum perf
//	tagspin-bench -benchcompare auto       # regression-gate the two newest BENCH_*.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/tagspin/tagspin/internal/experiment"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tagspin-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tagspin-bench", flag.ContinueOnError)
	var (
		runIDs       = fs.String("run", "all", "comma-separated experiment ids, or 'all'")
		list         = fs.Bool("list", false, "list experiment ids and exit")
		seed         = fs.Int64("seed", 0, "random seed")
		trials       = fs.Int("trials", 0, "override per-experiment trial counts (0 = defaults)")
		benchJSON    = fs.String("benchjson", "", "write spectrum micro-benchmark results (ns/op, allocs/op) as JSON to this file and exit")
		benchCompare = fs.String("benchcompare", "", "compare two bench reports ('old.json,new.json', or 'auto' for the two newest BENCH_<n>.json here) and fail on >10% ns/op regressions")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *benchJSON != "" {
		return writeBenchJSON(*benchJSON)
	}
	if *benchCompare != "" {
		return compareBenchJSON(*benchCompare)
	}
	if *list {
		for _, r := range experiment.All() {
			fmt.Printf("%-5s %s\n", r.ID, r.Title)
		}
		return nil
	}
	var runners []experiment.Runner
	if *runIDs == "all" || *runIDs == "" {
		runners = experiment.All()
	} else {
		for _, id := range strings.Split(*runIDs, ",") {
			r, err := experiment.ByID(strings.TrimSpace(id))
			if err != nil {
				return err
			}
			runners = append(runners, r)
		}
	}
	opts := experiment.Options{Seed: *seed, Trials: *trials}
	for _, r := range runners {
		start := time.Now()
		res, err := r.Run(opts)
		if err != nil {
			return fmt.Errorf("%s: %w", r.ID, err)
		}
		fmt.Print(res.Text())
		fmt.Printf("(%s in %v)\n\n", r.ID, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
