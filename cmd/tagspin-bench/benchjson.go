package main

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"testing"

	"github.com/tagspin/tagspin/internal/geom"
	"github.com/tagspin/tagspin/internal/mathx"
	"github.com/tagspin/tagspin/internal/phase"
	"github.com/tagspin/tagspin/internal/sched"
	"github.com/tagspin/tagspin/internal/spectrum"
	"github.com/tagspin/tagspin/internal/testbed"
)

// benchSchema is the current report schema. Version 8 keeps every
// version-7 row and adds the non-uniform-grid rows: DenseLocateNU2D /
// NUFFTLocate2D — the KindQ angle-grid coarse-scan pair on a jittered
// 720-cell grid over a jittery-actuator Gen2 session, the NUFFT row
// carrying speedupVsBatch against its dense baseline and gated at
// nufftMinSpeedup — DenseLocateNUR / NUFFTLocateR, the KindR pair
// (reported, ungated), and the estimator-backend streaming load A/B
// (LoadLocate2DStream/ml/K=<k> next to the schema-4
// LoadLocate2DStream/K=<k> rows). Version 7 keeps every
// version-6 row and adds the all-cells rows: LocateR/SubLinLocateR — the
// KindR coarse-scan pair mirroring schema 6's Locate2D/SubLinLocate2D, the
// SubLin row carrying speedupVsBatch against its dense baseline and gated at
// subLinRMinSpeedup — and the full-profile pairs
// DenseProfile2D/{Q,R} + AllCellsProfile2D/{Q,R} and
// DenseProfile3D/{Q,R} + AllCellsProfile3D/{Q,R}, timing the dense profile
// scans against the option-gated harmonic synthesis
// (Profile2DIntoOpt/Profile3DOpt), the AllCells 2D/Q pair gated at
// allCellsMinSpeedup. Version 6 added the sub-linear coarse-scan rows —
// Locate2D/SubLinLocate2D and Locate3D/SubLinLocate3D, coarse-only peak
// searches pairing each dense grid scan with its harmonic/hierarchical
// replacement, the SubLin rows carrying speedupVsBatch against their dense
// baseline — plus the estimator-backend load A/B (LoadLocate2D/ml/K=<k>
// next to the schema-3 LoadLocate2D/K=<k> rows). Version 5 added the
// solve-backend A/B rows — MLLocate2D/{grid,ml}
// and MLLocate3D/{grid,ml}, full Locate calls through the bearing-grid and
// joint maximum-likelihood estimators over identical observations, each
// carrying a meanErrM accuracy field — plus the report-level `rebaselined`
// marker written by `-rebaseline` (a fresh measurement of the current tree
// replacing a baseline taken on different hardware, so bench-compare deltas
// reflect code rather than environment drift). Version 4 added the streaming
// rows: StreamLocate2D/<kind>/{batch, stream} pairs measuring
// last-snapshot-to-answer latency (the stream row carries speedupVsBatch),
// and LoadLocate2DStream/K=<k> throughput rows for the full streaming
// pipeline. Version 3 added concurrent-load rows
// (LoadLocate2D/K=<k>: K simultaneous Locate2D pipelines on the shared
// compute pool, with aggregate locates/sec, p50/p99 latency, and the trig
// plan-cache hit rate). Version 2 added provenance — runtime.NumCPU at
// report level, per-benchmark GOMAXPROCS and an engine-variant label.
// Version 1 files (report-level GoMaxProcs only, no variants) still parse:
// rows without a goMaxProcs fall back to the report-level value, and the
// load-only fields are simply absent from older rows.
const benchSchema = "tagspin-bench/8"

// benchResult is one benchmark row of the machine-readable report.
type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"nsPerOp"`
	AllocsPerOp int64   `json:"allocsPerOp"`
	BytesPerOp  int64   `json:"bytesPerOp"`
	// GoMaxProcs is the GOMAXPROCS this row was measured at (schema 2+;
	// zero in schema-1 files, meaning the report-level value).
	GoMaxProcs int `json:"goMaxProcs,omitempty"`
	// Variant labels the engine path: "serial", "parallel", or "load"
	// machinery × "exact" or "fast" trig kernel (schema 2+).
	Variant string `json:"variant,omitempty"`
	// Concurrency is the number of simultaneous locate pipelines for a
	// load row (schema 3+; zero on micro rows).
	Concurrency int `json:"concurrency,omitempty"`
	// LocatesPerSec is the aggregate completed-locate throughput across
	// all Concurrency streams (schema 3+, load rows only).
	LocatesPerSec float64 `json:"locatesPerSec,omitempty"`
	// P50Ns and P99Ns are per-locate latency percentiles in nanoseconds
	// (schema 3+, load rows only; NsPerOp is the mean).
	P50Ns float64 `json:"p50Ns,omitempty"`
	P99Ns float64 `json:"p99Ns,omitempty"`
	// PlanCacheHitRate is the trig plan-cache hit rate over the row's run,
	// cache reset at row start (schema 3+, load rows only).
	PlanCacheHitRate float64 `json:"planCacheHitRate,omitempty"`
	// SpeedupVsBatch is how many times lower this row's latency is than its
	// paired batch/dense row (schema 4+ StreamLocate2D/*/stream rows;
	// schema 6+ SubLinLocate2D/3D rows, against Locate2D/3D; schema 7+
	// SubLinLocateR and AllCellsProfile2D/3D rows, against their Dense pair).
	SpeedupVsBatch float64 `json:"speedupVsBatch,omitempty"`
	// MeanErrM is the mean localization error in meters over the row's
	// accuracy sweep (schema 5+, MLLocate rows only).
	MeanErrM float64 `json:"meanErrM,omitempty"`
}

// benchReport is the BENCH_N.json envelope. The schema string is versioned
// so future PRs can extend the format without breaking trajectory tooling.
type benchReport struct {
	Schema    string `json:"schema"`
	GoVersion string `json:"goVersion"`
	// NumCPU is runtime.NumCPU on the measuring machine (schema 2+): the
	// ceiling any parallel speedup could have had.
	NumCPU int `json:"numCPU,omitempty"`
	// GoMaxProcs is the report-wide setting in schema-1 files; schema 2
	// records it per row and sets this to the value main ran under.
	GoMaxProcs int `json:"goMaxProcs"`
	// Rebaselined marks a report written by -rebaseline: a fresh
	// measurement of the current tree replacing a baseline file recorded
	// on different hardware (schema 5+). bench-compare calls it out so a
	// same-container diff isn't mistaken for a historical one.
	Rebaselined bool          `json:"rebaselined,omitempty"`
	Benchmarks  []benchResult `json:"benchmarks"`
}

// benchFewIters is the iteration count below which a micro row's ns/op is
// treated as too few-sample to trust from one testing.Benchmark run and is
// re-measured best-of-3 (min). Rows above it run enough iterations that
// host-load noise averages out within a single run.
const benchFewIters = 10

// benchCase is one entry of the micro-benchmark suite.
type benchCase struct {
	name    string
	variant string
	// procsSensitive marks benchmarks whose op fans out over GOMAXPROCS
	// workers; only these are re-measured at each GOMAXPROCS setting.
	procsSensitive bool
	fn             func(b *testing.B)
}

// benchProcs returns the deduplicated GOMAXPROCS settings to measure at:
// 1 (serial floor) and NumCPU (full machine).
func benchProcs() []int {
	if n := runtime.NumCPU(); n > 1 {
		return []int{1, n}
	}
	return []int{1}
}

// writeBenchJSON measures the spectrum hot paths with testing.Benchmark and
// writes the results (ns/op, allocs/op, provenance) as JSON, giving future
// PRs a machine-readable perf trajectory for the evaluation engine.
//
// Benchmark names are stable across schema versions so bench-compare can
// diff reports: EvalAtQ/EvalAtR are the single-candidate exact paths,
// Profile2DR and Profile3DCoarse{Serial,Parallel} the grid scans, and
// FindPeak2DR the full peak search (since schema 2 measured on a prebuilt
// Evaluator, which is the serving-path shape). *Fast rows are the same ops
// on the WithFastTrig kernel.
// rebaselined additionally stamps the report as a -rebaseline product.
func writeBenchJSON(path string, rebaselined bool) error {
	rng := rand.New(rand.NewSource(9))
	sc := testbed.DefaultScenario(0, rng)
	sc.Installs = sc.Installs[:1]
	sc.PlaceReader(geom.V3(-2.2, 1.3, 0))
	col, err := sc.Collect(rng)
	if err != nil {
		return err
	}
	snaps := col.Obs[sc.Installs[0].Tag.EPC]
	phase.SortByTime(snaps)
	params := spectrum.Params{Disk: sc.Installs[0].Disk}

	evQ, err := spectrum.NewEvaluator(snaps, params, spectrum.KindQ)
	if err != nil {
		return err
	}
	evR, err := spectrum.NewEvaluator(snaps, params, spectrum.KindR)
	if err != nil {
		return err
	}
	evQFast, err := spectrum.NewEvaluator(snaps, params, spectrum.KindQ, spectrum.WithFastTrig())
	if err != nil {
		return err
	}
	evRFast, err := spectrum.NewEvaluator(snaps, params, spectrum.KindR, spectrum.WithFastTrig())
	if err != nil {
		return err
	}
	angles := spectrum.UniformAngles(720)
	coarseAz := spectrum.UniformAngles(180)
	coarsePol := mathx.Linspace(-math.Pi/2, math.Pi/2, 91)

	var sink float64
	evalAt := func(ev *spectrum.Evaluator) func(b *testing.B) {
		return func(b *testing.B) {
			sc := ev.NewScratch()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sink = ev.EvalAt(sc, float64(i)*0.001, 0.1)
			}
		}
	}
	profile2D := func(ev *spectrum.Evaluator) func(b *testing.B) {
		return func(b *testing.B) {
			var prof spectrum.Profile
			ev.Profile2DInto(&prof, angles) // warm the profile and pools
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ev.Profile2DInto(&prof, angles)
			}
		}
	}
	profile3D := func(ev *spectrum.Evaluator) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ev.Profile3D(coarseAz, coarsePol)
			}
		}
	}
	findPeak2D := func(ev *spectrum.Evaluator) func(b *testing.B) {
		return func(b *testing.B) {
			spectrum.FindPeak2DEval(ev, spectrum.SearchOptions{}) // warm pools
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				az, pow := spectrum.FindPeak2DEval(ev, spectrum.SearchOptions{})
				sink = az + pow
			}
		}
	}

	benches := []benchCase{
		{"EvalAtQ", "serial/exact", false, evalAt(evQ)},
		{"EvalAtR", "serial/exact", false, evalAt(evR)},
		{"EvalAtRFast", "serial/fast", false, evalAt(evRFast)},
		{"Profile2DR", "parallel/exact", true, profile2D(evR)},
		{"Profile2DRFast", "parallel/fast", true, profile2D(evRFast)},
		{"Profile2DQFast", "parallel/fast", true, profile2D(evQFast)},
		{"Profile3DCoarseSerial", "serial/exact", false, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				evR.Profile3DSerial(coarseAz, coarsePol)
			}
		}},
		{"Profile3DCoarseParallel", "parallel/exact", true, profile3D(evR)},
		{"Profile3DCoarseParallelFast", "parallel/fast", true, profile3D(evRFast)},
		{"FindPeak2DR", "parallel/exact", true, findPeak2D(evR)},
		{"FindPeak2DRFast", "parallel/fast", true, findPeak2D(evRFast)},
	}

	report := benchReport{
		Schema:      benchSchema,
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Rebaselined: rebaselined,
	}
	prevProcs := runtime.GOMAXPROCS(0)
	prevWorkers := sched.Workers()
	defer func() {
		runtime.GOMAXPROCS(prevProcs)
		sched.SetWorkers(prevWorkers)
	}()
	for _, procs := range benchProcs() {
		// The shared compute pool's width is what the "parallel" rows
		// actually measure now; keep it in lockstep with GOMAXPROCS so
		// procs=1 rows are genuinely serial (the evaluator falls back to
		// its inline path at width 1).
		runtime.GOMAXPROCS(procs)
		sched.SetWorkers(procs)
		for _, bench := range benches {
			if procs != 1 && !bench.procsSensitive {
				continue // serial ops don't change with GOMAXPROCS
			}
			res := testing.Benchmark(bench.fn)
			// A row whose op costs hundreds of ms fits only a handful of
			// iterations in testing.Benchmark's budget, so its ns/op is a
			// mean of ~3 samples and wobbles ±20% with host load while
			// high-iteration rows self-average. Re-measure such rows and
			// keep the fastest run — the minimum estimates the noise-free
			// cost, the same policy the gated all-cells rows use.
			if !raceEnabled && res.N < benchFewIters {
				for rep := 0; rep < 2; rep++ {
					r := testing.Benchmark(bench.fn)
					if float64(r.T.Nanoseconds())*float64(res.N) < float64(res.T.Nanoseconds())*float64(r.N) {
						res = r
					}
				}
			}
			report.Benchmarks = append(report.Benchmarks, benchResult{
				Name:        bench.name,
				Iterations:  res.N,
				NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
				AllocsPerOp: res.AllocsPerOp(),
				BytesPerOp:  res.AllocedBytesPerOp(),
				GoMaxProcs:  procs,
				Variant:     bench.variant,
			})
			fmt.Fprintf(os.Stderr, "tagspin-bench: %-28s %14s procs=%-2d %12.0f ns/op %6d allocs/op\n",
				bench.name, bench.variant, procs,
				float64(res.T.Nanoseconds())/float64(res.N), res.AllocsPerOp())
		}
	}
	_ = sink
	// Concurrent-load rows run at full width after the micro sweep.
	runtime.GOMAXPROCS(prevProcs)
	sched.SetWorkers(prevWorkers)
	loadRows, err := loadBenchRows()
	if err != nil {
		return err
	}
	report.Benchmarks = append(report.Benchmarks, loadRows...)
	streamRows, err := streamBenchRows()
	if err != nil {
		return err
	}
	report.Benchmarks = append(report.Benchmarks, streamRows...)
	mlRows, err := mlBenchRows()
	if err != nil {
		return err
	}
	report.Benchmarks = append(report.Benchmarks, mlRows...)
	subLinRows, err := subLinBenchRows()
	if err != nil {
		return err
	}
	report.Benchmarks = append(report.Benchmarks, subLinRows...)
	allCellsRows, err := allCellsBenchRows()
	if err != nil {
		return err
	}
	report.Benchmarks = append(report.Benchmarks, allCellsRows...)
	nufftRows, err := nufftBenchRows()
	if err != nil {
		return err
	}
	report.Benchmarks = append(report.Benchmarks, nufftRows...)
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
