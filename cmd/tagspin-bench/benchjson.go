package main

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"testing"

	"github.com/tagspin/tagspin/internal/geom"
	"github.com/tagspin/tagspin/internal/mathx"
	"github.com/tagspin/tagspin/internal/phase"
	"github.com/tagspin/tagspin/internal/spectrum"
	"github.com/tagspin/tagspin/internal/testbed"
)

// benchResult is one benchmark row of the machine-readable report.
type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"nsPerOp"`
	AllocsPerOp int64   `json:"allocsPerOp"`
	BytesPerOp  int64   `json:"bytesPerOp"`
}

// benchReport is the BENCH_1.json envelope. The schema string is versioned
// so future PRs can extend the format without breaking trajectory tooling.
type benchReport struct {
	Schema     string        `json:"schema"`
	GoVersion  string        `json:"goVersion"`
	GoMaxProcs int           `json:"goMaxProcs"`
	Benchmarks []benchResult `json:"benchmarks"`
}

// writeBenchJSON measures the spectrum hot paths with testing.Benchmark and
// writes the results (ns/op, allocs/op) as JSON, giving future PRs a
// machine-readable perf trajectory for the evaluation engine.
func writeBenchJSON(path string) error {
	rng := rand.New(rand.NewSource(9))
	sc := testbed.DefaultScenario(0, rng)
	sc.Installs = sc.Installs[:1]
	sc.PlaceReader(geom.V3(-2.2, 1.3, 0))
	col, err := sc.Collect(rng)
	if err != nil {
		return err
	}
	snaps := col.Obs[sc.Installs[0].Tag.EPC]
	phase.SortByTime(snaps)
	params := spectrum.Params{Disk: sc.Installs[0].Disk}

	evQ, err := spectrum.NewEvaluator(snaps, params, spectrum.KindQ)
	if err != nil {
		return err
	}
	evR, err := spectrum.NewEvaluator(snaps, params, spectrum.KindR)
	if err != nil {
		return err
	}
	angles := spectrum.UniformAngles(720)
	coarseAz := spectrum.UniformAngles(180)
	coarsePol := mathx.Linspace(-math.Pi/2, math.Pi/2, 91)

	var sink float64
	benches := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"EvalAtQ", func(b *testing.B) {
			sc := evQ.NewScratch()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sink = evQ.EvalAt(sc, float64(i)*0.001, 0.1)
			}
		}},
		{"EvalAtR", func(b *testing.B) {
			sc := evR.NewScratch()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sink = evR.EvalAt(sc, float64(i)*0.001, 0.1)
			}
		}},
		{"Profile2DR", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				evR.Profile2D(angles)
			}
		}},
		{"Profile3DCoarseSerial", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				evR.Profile3DSerial(coarseAz, coarsePol)
			}
		}},
		{"Profile3DCoarseParallel", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				evR.Profile3D(coarseAz, coarsePol)
			}
		}},
		{"FindPeak2DR", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := spectrum.FindPeak2D(snaps, params, spectrum.KindR, spectrum.SearchOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}

	report := benchReport{
		Schema:     "tagspin-bench/1",
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	for _, bench := range benches {
		res := testing.Benchmark(bench.fn)
		report.Benchmarks = append(report.Benchmarks, benchResult{
			Name:        bench.name,
			Iterations:  res.N,
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
		})
		fmt.Fprintf(os.Stderr, "tagspin-bench: %-24s %12.0f ns/op %6d allocs/op\n",
			bench.name, float64(res.T.Nanoseconds())/float64(res.N), res.AllocsPerOp())
	}
	_ = sink
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
