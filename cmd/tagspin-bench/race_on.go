//go:build race

package main

// raceEnabled reports whether the race detector is compiled in; allocation
// assertions skip under it because the instrumentation itself allocates.
const raceEnabled = true
