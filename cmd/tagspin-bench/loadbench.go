package main

import (
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/tagspin/tagspin/internal/core"
	"github.com/tagspin/tagspin/internal/estimate"
	"github.com/tagspin/tagspin/internal/geom"
	"github.com/tagspin/tagspin/internal/spectrum"
	"github.com/tagspin/tagspin/internal/testbed"
)

// loadBenchDuration is how long each concurrency level is measured. Long
// enough for thousands of locates per stream on current hardware, short
// enough that the full K sweep stays under ~10 s.
const loadBenchDuration = 1500 * time.Millisecond

// loadConcurrencies returns the deduplicated, ascending K values to measure:
// 1, 2, 4, and NumCPU.
func loadConcurrencies() []int {
	ks := []int{1, 2, 4, runtime.NumCPU()}
	seen := map[int]bool{}
	out := ks[:0]
	for _, k := range ks {
		if k >= 1 && !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	sort.Ints(out)
	return out
}

// loadBenchRows measures the serving-path shape the compute pool exists
// for: K goroutines each running complete Locate2D pipelines back to back
// against the same scenario, all scan work multiplexed onto the shared
// pool. Each K yields one row per solve backend — LoadLocate2D/K=<k> for
// the default bearing-grid estimator (name unchanged since schema 3) and
// LoadLocate2D/ml/K=<k> for the joint maximum-likelihood backend (schema
// 6) — with aggregate locates/sec, mean latency as nsPerOp, p50/p99
// latency, and the plan-cache hit rate over the run (the cache is reset per
// row, so the rate reflects steady-state reuse after one cold sweep, the
// acceptance scenario of repeated locates at the default grid).
func loadBenchRows() ([]benchResult, error) {
	rng := rand.New(rand.NewSource(9))
	sc := testbed.DefaultScenario(0, rng)
	sc.PlaceReader(geom.V3(-2.2, 1.3, 0))
	col, err := sc.Collect(rng)
	if err != nil {
		return nil, err
	}
	grid := core.NewLocator(core.Config{FastSpectrum: true})
	backends := []struct {
		prefix string
		loc    *core.Locator
	}{
		{"LoadLocate2D", grid},
		{"LoadLocate2D/ml", grid.WithEstimator(estimate.NewML(estimate.Config{}))},
	}
	var rows []benchResult
	for _, be := range backends {
		// One untimed locate validates the scenario and warms every pool.
		if _, err := be.loc.Locate2D(col.Registered, col.Obs); err != nil {
			return nil, err
		}
		for _, k := range loadConcurrencies() {
			row, err := measureLoad(be.loc, col, fmt.Sprintf("%s/K=%d", be.prefix, k), k)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// measureLoad runs K goroutines of back-to-back Locate2D calls against the
// shared compute pool for loadBenchDuration and distills one load row.
func measureLoad(locator *core.Locator, col testbed.Collection, name string, k int) (benchResult, error) {
	spectrum.ResetPlanCache()
	latencies := make([][]time.Duration, k)
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(loadBenchDuration)
	for g := 0; g < k; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			lats := make([]time.Duration, 0, 4096)
			for time.Now().Before(deadline) {
				t0 := time.Now()
				if _, err := locator.Locate2D(col.Registered, col.Obs); err != nil {
					panic(fmt.Sprintf("load bench locate failed: %v", err))
				}
				lats = append(lats, time.Since(t0))
			}
			latencies[g] = lats
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	for _, lats := range latencies {
		all = append(all, lats...)
	}
	if len(all) == 0 {
		return benchResult{}, fmt.Errorf("load bench %s completed no locates", name)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	var total time.Duration
	for _, d := range all {
		total += d
	}
	p50 := all[len(all)/2]
	p99 := all[(len(all)*99)/100]
	cacheStats := spectrum.PlanCacheSnapshot()
	row := benchResult{
		Name:             name,
		Iterations:       len(all),
		NsPerOp:          float64(total.Nanoseconds()) / float64(len(all)),
		GoMaxProcs:       runtime.GOMAXPROCS(0),
		Variant:          "load/fast",
		Concurrency:      k,
		LocatesPerSec:    float64(len(all)) / elapsed.Seconds(),
		P50Ns:            float64(p50.Nanoseconds()),
		P99Ns:            float64(p99.Nanoseconds()),
		PlanCacheHitRate: cacheStats.HitRate,
	}
	fmt.Fprintf(os.Stderr,
		"tagspin-bench: %-28s %14s procs=%-2d %12.0f ns/op  %7.1f locates/s  p50=%.2fms p99=%.2fms  cache=%.3f\n",
		row.Name, row.Variant, row.GoMaxProcs, row.NsPerOp, row.LocatesPerSec,
		float64(p50.Nanoseconds())/1e6, float64(p99.Nanoseconds())/1e6, row.PlanCacheHitRate)
	return row, nil
}
