package main

import (
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"

	"github.com/tagspin/tagspin/internal/geom"
	"github.com/tagspin/tagspin/internal/phase"
	"github.com/tagspin/tagspin/internal/spectrum"
	"github.com/tagspin/tagspin/internal/testbed"
)

// subLinMinSpeedup is the acceptance floor for the 2D sub-linear coarse
// scan: the harmonic evaluator must beat the dense scan by at least this
// factor on the default grid, or the row generation itself fails (and
// bench-compare re-checks the recorded ratio, so a stale report cannot hide
// a regression either).
const subLinMinSpeedup = 5.0

// subLinBenchRows measures the sub-linear coarse-scan paths against their
// dense baselines (schema 6). All four rows are coarse-only searches
// (NoRefine) on a prebuilt KindQ evaluator, so the ratio isolates exactly
// the grid scan the hierarchical/harmonic machinery replaces:
//
//   - Locate2D: the dense 720-cell azimuth scan (both toggles off).
//   - SubLinLocate2D: the default-on harmonic evaluator (fold, synthesize,
//     exact rescore), carrying speedupVsBatch against Locate2D.
//   - Locate3D: the dense az × polar scan (toggles off).
//   - SubLinLocate3D: the default-on hierarchical lattice scanner, carrying
//     speedupVsBatch against Locate3D.
func subLinBenchRows() ([]benchResult, error) {
	rng := rand.New(rand.NewSource(13))
	sc := testbed.DefaultScenario(0, rng)
	sc.Installs = sc.Installs[:1]
	sc.PlaceReader(geom.V3(-2.2, 1.3, 0))
	col, err := sc.Collect(rng)
	if err != nil {
		return nil, err
	}
	snaps := col.Obs[sc.Installs[0].Tag.EPC]
	phase.SortByTime(snaps)
	params := spectrum.Params{Disk: sc.Installs[0].Disk}
	ev, err := spectrum.NewEvaluator(snaps, params, spectrum.KindQ)
	if err != nil {
		return nil, err
	}

	dense2D := spectrum.SearchOptions{
		Refinements:  spectrum.NoRefine,
		HarmonicEval: spectrum.ToggleOff,
		Hierarchical: spectrum.ToggleOff,
	}
	sub2D := spectrum.SearchOptions{Refinements: spectrum.NoRefine}
	dense3D, sub3D := dense2D, sub2D

	// The sub-linear paths return the dense argmax bit for bit (the
	// bit-identity suites pin this); recheck here so the speedup rows can
	// never quietly measure two different answers.
	wantAz, wantPow := spectrum.FindPeak2DEval(ev, dense2D)
	if gotAz, gotPow := spectrum.FindPeak2DEval(ev, sub2D); gotAz != wantAz || gotPow != wantPow {
		return nil, fmt.Errorf("sublin bench: 2D sub-linear peak (%v, %v) != dense (%v, %v)", gotAz, gotPow, wantAz, wantPow)
	}
	if got, want := spectrum.FindPeak3DEval(ev, sub3D), spectrum.FindPeak3DEval(ev, dense3D); got != want {
		return nil, fmt.Errorf("sublin bench: 3D sub-linear peak %+v != dense %+v", got, want)
	}

	var sink float64
	peak2D := func(opts spectrum.SearchOptions) func(b *testing.B) {
		return func(b *testing.B) {
			spectrum.FindPeak2DEval(ev, opts) // warm pools and plan cache
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				az, pow := spectrum.FindPeak2DEval(ev, opts)
				sink = az + pow
			}
		}
	}
	peak3D := func(opts spectrum.SearchOptions) func(b *testing.B) {
		return func(b *testing.B) {
			spectrum.FindPeak3DEval(ev, opts)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pk := spectrum.FindPeak3DEval(ev, opts)
				sink = pk.Azimuth + pk.Power
			}
		}
	}

	cases := []struct {
		name    string
		variant string
		fn      func(b *testing.B)
	}{
		{"Locate2D", "dense/exact", peak2D(dense2D)},
		{"SubLinLocate2D", "harmonic/exact", peak2D(sub2D)},
		{"Locate3D", "dense/exact", peak3D(dense3D)},
		{"SubLinLocate3D", "hierarchical/exact", peak3D(sub3D)},
	}
	procs := runtime.GOMAXPROCS(0)
	rows := make([]benchResult, 0, len(cases))
	for _, c := range cases {
		res := testing.Benchmark(c.fn)
		rows = append(rows, benchResult{
			Name:        c.name,
			Iterations:  res.N,
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
			GoMaxProcs:  procs,
			Variant:     c.variant,
		})
	}
	_ = sink
	// Pair each SubLin row with its dense baseline measured just before it.
	rows[1].SpeedupVsBatch = rows[0].NsPerOp / rows[1].NsPerOp
	rows[3].SpeedupVsBatch = rows[2].NsPerOp / rows[3].NsPerOp
	for _, r := range rows {
		extra := ""
		if r.SpeedupVsBatch > 0 {
			extra = fmt.Sprintf("  %.1fx vs dense", r.SpeedupVsBatch)
		}
		fmt.Fprintf(os.Stderr, "tagspin-bench: %-28s %14s procs=%-2d %12.0f ns/op %6d allocs/op%s\n",
			r.Name, r.Variant, r.GoMaxProcs, r.NsPerOp, r.AllocsPerOp, extra)
	}
	// Race instrumentation taxes the harmonic path's tight rescore loops
	// harder than the dense scan's and compresses the ratio below the
	// floor (~4.7x observed); only un-instrumented builds produce
	// measurements the floor is calibrated for. bench-compare re-checks
	// the recorded ratio on every BENCH_6+ snapshot, so the gate still
	// holds where it matters.
	if !raceEnabled && rows[1].SpeedupVsBatch < subLinMinSpeedup {
		return nil, fmt.Errorf("sublin bench: SubLinLocate2D speedup %.1fx below the %.0fx floor",
			rows[1].SpeedupVsBatch, subLinMinSpeedup)
	}
	return rows, nil
}
