package main

import (
	"context"
	"testing"
	"time"
)

// TestRunGracefulShutdown starts the server on an ephemeral port, requests
// shutdown via context cancellation (the same path SIGINT/SIGTERM take), and
// expects a clean nil return — http.ErrServerClosed must not leak out.
func TestRunGracefulShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-drain", "5s"})
	}()
	// Give ListenAndServe a moment to bind before pulling the plug.
	time.Sleep(200 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v, want clean exit", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not shut down")
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run(context.Background(), []string{"-no-such-flag"}); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunMissingRegistry(t *testing.T) {
	if err := run(context.Background(), []string{"-registry", "/nonexistent/registry.json"}); err == nil {
		t.Error("missing registry file accepted")
	}
}
