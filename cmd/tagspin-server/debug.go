package main

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on http.DefaultServeMux
	"sync"
	"sync/atomic"
	"time"

	"github.com/tagspin/tagspin/internal/locsrv"
	"github.com/tagspin/tagspin/internal/sched"
	"github.com/tagspin/tagspin/internal/spectrum"
)

// The -debug-addr listener serves http.DefaultServeMux, which carries the
// net/http/pprof profiles (imported above) and expvar's /debug/vars
// (registered by the expvar import). The tagspin-specific vars below add
// the compute-pool gauges (workers, active jobs, chunks/sec), the trig
// plan-cache hit/miss counters, the spectrum coarse-search routing tally
// (which accelerator served each scan), and the server's request/admission
// counters. The debug listener is separate from the API listener on
// purpose: profiles and metrics never compete with (or get exposed to)
// localization traffic.

var (
	debugOnce sync.Once
	debugSrv  atomic.Pointer[locsrv.Server]
)

// publishDebugVars registers the tagspin expvars once per process and
// points them at srv. Re-pointing on subsequent calls (tests run the
// server repeatedly in one process) keeps expvar.Publish from panicking on
// duplicate names.
func publishDebugVars(srv *locsrv.Server) {
	debugSrv.Store(srv)
	debugOnce.Do(func() {
		expvar.Publish("tagspin_sched", expvar.Func(func() any {
			return sched.PoolStats()
		}))
		expvar.Publish("tagspin_plancache", expvar.Func(func() any {
			return spectrum.PlanCacheSnapshot()
		}))
		expvar.Publish("tagspin_spectrum_search", expvar.Func(func() any {
			return spectrum.SearchStatsSnapshot()
		}))
		expvar.Publish("tagspin_server", expvar.Func(func() any {
			if s := debugSrv.Load(); s != nil {
				return s.Stats()
			}
			return locsrv.Stats{}
		}))
	})
}

// startDebugServer begins serving pprof + expvar on addr. The returned
// server is already accepting; the caller owns shutting it down.
func startDebugServer(addr string) (*http.Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("debug listener: %w", err)
	}
	dbg := &http.Server{
		Handler:           http.DefaultServeMux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	go dbg.Serve(ln) //nolint:errcheck // closed via dbg.Close on shutdown
	fmt.Printf("debug server (pprof, expvar) listening on http://%s/debug/\n", ln.Addr())
	return dbg, nil
}
