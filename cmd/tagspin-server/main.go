// Command tagspin-server runs the central localization server: it owns the
// spinning-tag registry, collects phase snapshots from readers over the
// LLRP-flavoured protocol, runs the Tagspin pipeline, and serves an
// HTTP/JSON control API:
//
//	GET  /healthz
//	GET  /v1/tags
//	POST /v1/tags            {"epc":..., "centerM":[x,y,z], "radiusM":..., "omegaRadPerSec":...}
//	DELETE /v1/tags/{epc}
//	POST /v1/locate          {"readerAddr":"host:port", "mode":"2d"|"3d"}
//
// The server shuts down gracefully: SIGINT/SIGTERM stops accepting new
// connections, drains in-flight requests for up to the -drain budget, and
// exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/tagspin/tagspin/internal/client"
	"github.com/tagspin/tagspin/internal/coord"
	"github.com/tagspin/tagspin/internal/locsrv"
	"github.com/tagspin/tagspin/internal/registry"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tagspin-server:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("tagspin-server", flag.ContinueOnError)
	var (
		addr           = fs.String("addr", "127.0.0.1:8080", "HTTP listen address")
		regPath        = fs.String("registry", "", "registry JSON to load at startup")
		requestTimeout = fs.Duration("request-timeout", 0, "per-request deadline for locate/locate-batch (0 = no server deadline)")
		drain          = fs.Duration("drain", 10*time.Second, "graceful-shutdown budget for draining in-flight requests")
		maxAttempts    = fs.Int("max-attempts", 0, "collect attempts per reader, retrying transient failures (0 = client default of 3)")
		baseBackoff    = fs.Duration("base-backoff", 0, "first collect retry delay, doubled with jitter (0 = client default of 100ms)")
		collectTimeout = fs.Duration("collect-timeout", 0, "wall-clock bound per collection session (0 = client default of 30s)")
		workers        = fs.Int("workers", 0, "spectrum compute-pool width (0 = TAGSPIN_WORKERS env or GOMAXPROCS)")
		maxInFlight    = fs.Int("max-in-flight", 0, "admitted locate requests before shedding with 503 (0 = 2x pool width, negative = unlimited)")
		debugAddr      = fs.String("debug-addr", "", "serve net/http/pprof and expvar on this address (empty = disabled)")
		coordAddr      = fs.String("coord", "", "register with the fleet coordinator at this address (host:port; empty = standalone)")
		advertise      = fs.String("advertise", "", "address to advertise to the coordinator (empty = -addr)")
		heartbeat      = fs.Duration("heartbeat", 0, "coordinator heartbeat period (0 = 5s; must undercut the coordinator's -heartbeat-ttl)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	reg := registry.New()
	if *regPath != "" {
		loaded, err := registry.Load(*regPath)
		if err != nil {
			return err
		}
		reg = loaded
		fmt.Printf("loaded %d spinning tags from %s\n", reg.Len(), *regPath)
	}
	srv, err := locsrv.New(locsrv.Config{
		Registry:       reg,
		Workers:        *workers,
		MaxInFlight:    *maxInFlight,
		RequestTimeout: *requestTimeout,
		Client: client.Config{
			Timeout:     *collectTimeout,
			MaxAttempts: *maxAttempts,
			BaseBackoff: *baseBackoff,
		},
		Logf: func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", a...)
		},
	})
	if err != nil {
		return err
	}
	if *debugAddr != "" {
		publishDebugVars(srv)
		dbg, err := startDebugServer(*debugAddr)
		if err != nil {
			return err
		}
		defer dbg.Close() //nolint:errcheck // best-effort on exit
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.ListenAndServe() }()
	fmt.Printf("localization server listening on http://%s\n", *addr)

	// Fleet membership: register with the coordinator and heartbeat until
	// shutdown; the announcer deregisters on its way out so the coordinator
	// re-homes this replica's readers before the drain even starts.
	announced := make(chan struct{})
	if *coordAddr != "" {
		adv := *advertise
		if adv == "" {
			adv = *addr
		}
		ann := &coord.Announcer{
			Coordinator: *coordAddr,
			Addr:        adv,
			Interval:    *heartbeat,
			Logf: func(format string, a ...any) {
				fmt.Fprintf(os.Stderr, format+"\n", a...)
			},
		}
		go func() {
			defer close(announced)
			ann.Run(ctx) //nolint:errcheck // returns ctx.Err() on shutdown
		}()
	} else {
		close(announced)
	}

	select {
	case err := <-serveErr:
		// Listen/serve failed before any shutdown was requested.
		return err
	case <-ctx.Done():
	}
	// Drain sequence: deregister (announcer), stop admitting (Drain: new
	// locates shed 503, /healthz fails), then finish in-flight requests.
	fmt.Println("shutdown requested; shedding new requests, draining in-flight")
	<-announced
	srv.Drain()
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		httpSrv.Close() //nolint:errcheck // already failing; force-close stragglers
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
