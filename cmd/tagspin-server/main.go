// Command tagspin-server runs the central localization server: it owns the
// spinning-tag registry, collects phase snapshots from readers over the
// LLRP-flavoured protocol, runs the Tagspin pipeline, and serves an
// HTTP/JSON control API:
//
//	GET  /healthz
//	GET  /v1/tags
//	POST /v1/tags            {"epc":..., "centerM":[x,y,z], "radiusM":..., "omegaRadPerSec":...}
//	DELETE /v1/tags/{epc}
//	POST /v1/locate          {"readerAddr":"host:port", "mode":"2d"|"3d"}
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"github.com/tagspin/tagspin/internal/locsrv"
	"github.com/tagspin/tagspin/internal/registry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tagspin-server:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tagspin-server", flag.ContinueOnError)
	var (
		addr    = fs.String("addr", "127.0.0.1:8080", "HTTP listen address")
		regPath = fs.String("registry", "", "registry JSON to load at startup")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	reg := registry.New()
	if *regPath != "" {
		loaded, err := registry.Load(*regPath)
		if err != nil {
			return err
		}
		reg = loaded
		fmt.Printf("loaded %d spinning tags from %s\n", reg.Len(), *regPath)
	}
	srv, err := locsrv.New(locsrv.Config{
		Registry: reg,
		Logf: func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", a...)
		},
	})
	if err != nil {
		return err
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	fmt.Printf("localization server listening on http://%s\n", *addr)
	return httpSrv.ListenAndServe()
}
