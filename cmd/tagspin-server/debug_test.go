package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/tagspin/tagspin/internal/locsrv"
	"github.com/tagspin/tagspin/internal/registry"
)

// TestDebugVars pins the observability surface: after publishDebugVars, the
// default mux's /debug/vars carries the pool, plan-cache, and server
// counter groups, and the pprof index is mounted.
func TestDebugVars(t *testing.T) {
	srv, err := locsrv.New(locsrv.Config{Registry: registry.New()})
	if err != nil {
		t.Fatal(err)
	}
	publishDebugVars(srv)
	publishDebugVars(srv) // second call must not panic on duplicate Publish

	ts := httptest.NewServer(http.DefaultServeMux)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/vars: status %d", resp.StatusCode)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	for _, key := range []string{"tagspin_sched", "tagspin_plancache", "tagspin_server"} {
		raw, ok := vars[key]
		if !ok {
			t.Errorf("/debug/vars missing %q", key)
			continue
		}
		var decoded map[string]any
		if err := json.Unmarshal(raw, &decoded); err != nil {
			t.Errorf("%q is not a JSON object: %v", key, err)
		}
	}
	var pool struct{ Workers int }
	if err := json.Unmarshal(vars["tagspin_sched"], &pool); err == nil && pool.Workers < 1 {
		t.Errorf("tagspin_sched.Workers = %d, want >= 1", pool.Workers)
	}

	resp, err = http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	idx, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(idx), "goroutine") {
		t.Errorf("/debug/pprof/: status %d, index lists no profiles", resp.StatusCode)
	}
}

// TestRunWithDebugAddr runs the full server with a debug listener enabled
// and checks it still shuts down cleanly.
func TestRunWithDebugAddr(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-debug-addr", "127.0.0.1:0", "-drain", "5s"})
	}()
	time.Sleep(200 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run with -debug-addr returned %v, want clean exit", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run did not shut down")
	}
}
