// Command tagspin-trace records and replays collection-session traces.
//
//	tagspin-trace record -out session.jsonl -x -1.8 -y 1.4   # simulate & save
//	tagspin-trace locate -in session.jsonl                   # replay & localize
//	tagspin-trace analyze -in session.jsonl                  # per-tag statistics
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"sort"
	"time"

	"github.com/tagspin/tagspin/internal/core"
	"github.com/tagspin/tagspin/internal/geom"
	"github.com/tagspin/tagspin/internal/mathx"
	"github.com/tagspin/tagspin/internal/phase"
	"github.com/tagspin/tagspin/internal/testbed"
	"github.com/tagspin/tagspin/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tagspin-trace:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: tagspin-trace record|locate|analyze [flags]")
	}
	switch args[0] {
	case "record":
		return record(args[1:])
	case "locate":
		return locateCmd(args[1:])
	case "analyze":
		return analyze(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q (want record, locate or analyze)", args[0])
	}
}

func record(args []string) error {
	fs := flag.NewFlagSet("record", flag.ContinueOnError)
	var (
		out  = fs.String("out", "session.jsonl", "output trace path")
		x    = fs.Float64("x", -1.8, "true antenna x (m)")
		y    = fs.Float64("y", 1.4, "true antenna y (m)")
		z    = fs.Float64("z", 0, "true antenna z (m)")
		seed = fs.Int64("seed", 1, "random seed")
		desc = fs.String("desc", "simulated session", "trace description")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed))
	sc := testbed.DefaultScenario(0, rng)
	target := geom.V3(*x, *y, *z)
	sc.PlaceReader(target)
	registered, err := sc.CalibratedSpinningTags(rng)
	if err != nil {
		return err
	}
	col, err := sc.Collect(rng)
	if err != nil {
		return err
	}
	truth := [3]float64{target.X, target.Y, target.Z}
	tr := trace.New(*desc, registered, col.Obs, &truth)
	if err := trace.Save(*out, tr); err != nil {
		return err
	}
	fmt.Printf("recorded %d reads from %d spinning tags to %s\n",
		len(tr.Records), len(tr.Header.Registered), *out)
	return nil
}

func locateCmd(args []string) error {
	fs := flag.NewFlagSet("locate", flag.ContinueOnError)
	var (
		in     = fs.String("in", "session.jsonl", "input trace path")
		mode3d = fs.Bool("3d", false, "solve in 3D")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	tr, err := trace.Load(*in)
	if err != nil {
		return err
	}
	obs, err := tr.Observations()
	if err != nil {
		return err
	}
	registered, err := tr.SpinningTags()
	if err != nil {
		return err
	}
	loc := core.NewLocator(core.Config{})
	if *mode3d {
		res, err := loc.Locate3D(registered, obs)
		if err != nil {
			return err
		}
		fmt.Printf("estimated position: %v (mirror %v)\n", res.Position, res.Mirror)
		reportTruth3D(tr, res.Position)
		return nil
	}
	res, err := loc.Locate2D(registered, obs)
	if err != nil {
		return err
	}
	fmt.Printf("estimated position: %v\n", res.Position)
	if tr.Header.TruePosition != nil {
		truth := geom.V2(tr.Header.TruePosition[0], tr.Header.TruePosition[1])
		fmt.Printf("ground truth: %v — error %.1f cm\n", truth, res.Position.DistanceTo(truth)*100)
	}
	return nil
}

func reportTruth3D(tr *trace.Trace, got geom.Vec3) {
	if tr.Header.TruePosition == nil {
		return
	}
	truth := geom.V3(tr.Header.TruePosition[0], tr.Header.TruePosition[1], tr.Header.TruePosition[2])
	fmt.Printf("ground truth: %v — error %.1f cm\n", truth, got.DistanceTo(truth)*100)
}

func analyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ContinueOnError)
	in := fs.String("in", "session.jsonl", "input trace path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	tr, err := trace.Load(*in)
	if err != nil {
		return err
	}
	obs, err := tr.Observations()
	if err != nil {
		return err
	}
	fmt.Printf("trace %q: %d registered tags, %d reads\n",
		tr.Header.Description, len(tr.Header.Registered), len(tr.Records))
	if tr.Header.TruePosition != nil {
		fmt.Printf("ground truth: (%.3f, %.3f, %.3f)\n",
			tr.Header.TruePosition[0], tr.Header.TruePosition[1], tr.Header.TruePosition[2])
	}
	epcs := make([]string, 0, len(obs))
	byEPC := make(map[string][]phase.Snapshot, len(obs))
	for epc, snaps := range obs {
		epcs = append(epcs, epc.String())
		byEPC[epc.String()] = snaps
	}
	sort.Strings(epcs)
	for _, epc := range epcs {
		snaps := byEPC[epc]
		phase.SortByTime(snaps)
		span := snaps[len(snaps)-1].Time - snaps[0].Time
		rate := 0.0
		if span > 0 {
			rate = float64(len(snaps)-1) / span.Seconds()
		}
		var rssi []float64
		channels := make(map[float64]bool)
		wraps := 0
		for i, s := range snaps {
			rssi = append(rssi, s.RSSIdBm)
			channels[s.FrequencyHz] = true
			if i > 0 && math.Abs(s.Phase-snaps[i-1].Phase) > math.Pi {
				wraps++
			}
		}
		fmt.Printf("tag %s: %d reads over %v (%.1f/s), RSSI %.1f±%.1f dBm, %d carrier(s), %d phase wraps\n",
			epc, len(snaps), span.Round(time.Millisecond), rate,
			mathx.Mean(rssi), mathx.Std(rssi), len(channels), wraps)
	}
	return nil
}
