package main

import (
	"path/filepath"
	"testing"
)

func TestRecordThenLocate(t *testing.T) {
	out := filepath.Join(t.TempDir(), "session.jsonl")
	if err := run([]string{"record", "-out", out, "-x", "-1.8", "-y", "1.4", "-seed", "3"}); err != nil {
		t.Fatalf("record: %v", err)
	}
	if err := run([]string{"locate", "-in", out}); err != nil {
		t.Fatalf("locate: %v", err)
	}
	if err := run([]string{"locate", "-in", out, "-3d"}); err != nil {
		t.Fatalf("locate -3d: %v", err)
	}
}

func TestBadInvocations(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no subcommand accepted")
	}
	if err := run([]string{"frobnicate"}); err == nil {
		t.Error("unknown subcommand accepted")
	}
	if err := run([]string{"locate", "-in", filepath.Join(t.TempDir(), "missing.jsonl")}); err == nil {
		t.Error("missing trace accepted")
	}
	if err := run([]string{"record", "-out", "/nonexistent-dir/x.jsonl"}); err == nil {
		t.Error("unwritable output accepted")
	}
}

func TestAnalyze(t *testing.T) {
	out := filepath.Join(t.TempDir(), "session.jsonl")
	if err := run([]string{"record", "-out", out, "-seed", "5"}); err != nil {
		t.Fatalf("record: %v", err)
	}
	if err := run([]string{"analyze", "-in", out}); err != nil {
		t.Fatalf("analyze: %v", err)
	}
	if err := run([]string{"analyze", "-in", filepath.Join(t.TempDir(), "missing.jsonl")}); err == nil {
		t.Error("missing trace accepted")
	}
}
