// Command tagspin-coord runs the fleet coordinator: an HTTP tier that shards
// locate sessions across N locsrv replicas with consistent-hash routing
// (sticky per reader address, so replica-side plan/trig caches stay hot),
// absorbs replica backpressure and crashes by rerouting to the next ring
// candidate, health-checks the fleet, and rolls the cluster's stats up into
// one report:
//
//	GET    /healthz
//	GET    /v1/replicas            routing table with health + counters
//	POST   /v1/replicas            {"addr":"host:port"} register/heartbeat
//	DELETE /v1/replicas/{addr}     deregister
//	POST   /v1/locate              routed by readerAddr
//	POST   /v1/locate-batch        split by ring owner, reassembled in order
//	GET    /v1/tags                answered by the first reachable replica
//	POST   /v1/tags                fanned out to every replica
//	DELETE /v1/tags/{epc}          fanned out to every replica
//	GET    /v1/cluster-stats       coordinator + per-replica + summed stats
//
// Replicas are either pinned with -replicas or register themselves (see
// tagspin-server's -coord flag) and are expired when their heartbeats stop.
//
// SIGINT/SIGTERM drains gracefully: the coordinator stops admitting (503 +
// Retry-After, health goes unhealthy so load balancers steer away), finishes
// in-flight routes for up to the -drain budget, and exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/tagspin/tagspin/internal/coord"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tagspin-coord:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("tagspin-coord", flag.ContinueOnError)
	var (
		addr           = fs.String("addr", "127.0.0.1:8090", "HTTP listen address")
		replicas       = fs.String("replicas", "", "comma-separated static replica addresses (host:port); more may register at runtime")
		probeInterval  = fs.Duration("probe-interval", 0, "active health-probe period (0 = 2s)")
		tripAfter      = fs.Int("trip-after", 0, "consecutive probe failures before a replica is tripped (0 = 3)")
		restoreAfter   = fs.Int("restore-after", 0, "consecutive probe successes before a tripped replica is restored (0 = 2)")
		heartbeatTTL   = fs.Duration("heartbeat-ttl", 0, "expire dynamically registered replicas after this silence (0 = 15s)")
		rerouteBudget  = fs.Int("reroute-budget", 0, "extra replicas to try after the ring owner fails (0 = 2, negative = no reroutes)")
		rerouteBackoff = fs.Duration("reroute-backoff", 0, "base delay before a reroute hop, doubled with jitter (0 = 25ms)")
		drain          = fs.Duration("drain", 10*time.Second, "graceful-shutdown budget for draining in-flight routes")
		debugAddr      = fs.String("debug-addr", "", "serve net/http/pprof and expvar on this address (empty = disabled)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var static []string
	for _, a := range strings.Split(*replicas, ",") {
		if a = strings.TrimSpace(a); a != "" {
			static = append(static, a)
		}
	}
	c, err := coord.New(coord.Config{
		Replicas:       static,
		ProbeInterval:  *probeInterval,
		TripAfter:      *tripAfter,
		RestoreAfter:   *restoreAfter,
		HeartbeatTTL:   *heartbeatTTL,
		RerouteBudget:  *rerouteBudget,
		RerouteBackoff: *rerouteBackoff,
		Logf: func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", a...)
		},
	})
	if err != nil {
		return err
	}
	if *debugAddr != "" {
		publishDebugVars(c)
		dbg, err := startDebugServer(*debugAddr)
		if err != nil {
			return err
		}
		defer dbg.Close() //nolint:errcheck // best-effort on exit
	}
	// The health/expiry loop stops with the drain below, not with the
	// signal context — probes keep running while in-flight routes finish.
	loopCtx, stopLoop := context.WithCancel(context.Background())
	defer stopLoop()
	go c.Run(loopCtx)

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           c.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.ListenAndServe() }()
	fmt.Printf("fleet coordinator listening on http://%s (%d static replicas)\n", *addr, len(static))
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	// Drain sequence: stop admitting first (new locates shed with 503 and
	// /healthz fails), then let in-flight routes finish under the budget.
	fmt.Println("shutdown requested; shedding new requests, draining in-flight routes")
	c.Drain()
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		httpSrv.Close() //nolint:errcheck // already failing; force-close stragglers
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
