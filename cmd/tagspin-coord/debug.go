package main

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on http.DefaultServeMux
	"sync"
	"sync/atomic"
	"time"

	"github.com/tagspin/tagspin/internal/coord"
)

// The -debug-addr listener serves http.DefaultServeMux: pprof profiles plus
// expvar's /debug/vars carrying tagspin_coord — the coordinator's routing
// table, reroute/shed counters, and health verdicts. The cluster-wide rollup
// (which probes every replica) stays on the API listener as
// /v1/cluster-stats; publishing it as an expvar would turn every metrics
// scrape into a fleet-wide fan-out.

var (
	debugOnce  sync.Once
	debugCoord atomic.Pointer[coord.Coordinator]
)

// publishDebugVars registers the coordinator expvar once per process and
// points it at c (re-pointing keeps expvar.Publish from panicking when tests
// run the coordinator repeatedly in one process).
func publishDebugVars(c *coord.Coordinator) {
	debugCoord.Store(c)
	debugOnce.Do(func() {
		expvar.Publish("tagspin_coord", expvar.Func(func() any {
			if c := debugCoord.Load(); c != nil {
				return c.Stats()
			}
			return coord.Stats{}
		}))
	})
}

// startDebugServer begins serving pprof + expvar on addr. The returned
// server is already accepting; the caller owns shutting it down.
func startDebugServer(addr string) (*http.Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("debug listener: %w", err)
	}
	dbg := &http.Server{
		Handler:           http.DefaultServeMux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	go dbg.Serve(ln) //nolint:errcheck // closed via dbg.Close on shutdown
	fmt.Printf("debug server (pprof, expvar) listening on http://%s/debug/\n", ln.Addr())
	return dbg, nil
}
