// Command tagspin-reader runs a simulated Impinj-style RFID reader: a
// deployment of two spinning tags plus one reader antenna at a configurable
// true position, served over the LLRP-flavoured TCP protocol. Point a
// tagspin-server (or the livedemo example) at it to localize the antenna.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"syscall"

	"github.com/tagspin/tagspin/internal/geom"
	"github.com/tagspin/tagspin/internal/readersim"
	"github.com/tagspin/tagspin/internal/registry"
	"github.com/tagspin/tagspin/internal/testbed"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tagspin-reader:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("tagspin-reader", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", "127.0.0.1:5084", "LLRP listen address")
		x         = fs.Float64("x", -1.8, "true antenna x (m)")
		y         = fs.Float64("y", 1.4, "true antenna y (m)")
		z         = fs.Float64("z", 0, "true antenna z (m)")
		timeScale = fs.Float64("timescale", 1, "simulated seconds per wall second")
		seed      = fs.Int64("seed", 1, "random seed")
		regOut    = fs.String("write-registry", "", "write the spinning-tag registry JSON to this path")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(*seed))
	world := testbed.DefaultScenario(0, rng)
	world.PlaceReader(geom.V3(*x, *y, *z))

	if *regOut != "" {
		calibrated, err := world.CalibratedSpinningTags(rng)
		if err != nil {
			return fmt.Errorf("orientation prelude: %w", err)
		}
		reg := registry.New()
		for _, st := range calibrated {
			if err := reg.Add(registry.EntryFromSpinningTag(st)); err != nil {
				return err
			}
		}
		if err := reg.Save(*regOut); err != nil {
			return err
		}
		fmt.Printf("wrote registry for %d spinning tags to %s\n", reg.Len(), *regOut)
	}

	reader, err := readersim.New(readersim.Config{
		World:     world,
		TimeScale: *timeScale,
		Seed:      *seed,
		Logf: func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", a...)
		},
	})
	if err != nil {
		return err
	}
	fmt.Printf("simulated reader at (%.2f, %.2f, %.2f), serving LLRP on %s\n", *x, *y, *z, *addr)
	serveErr := make(chan error, 1)
	go func() { serveErr <- reader.ListenAndServe(*addr) }()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	fmt.Println("shutdown requested; closing reader")
	if err := reader.Close(); err != nil {
		return err
	}
	return <-serveErr
}
