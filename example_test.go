package tagspin_test

import (
	"fmt"
	"math"

	"github.com/tagspin/tagspin"
)

// ExampleParseEPC shows EPC round-tripping.
func ExampleParseEPC() {
	epc, err := tagspin.ParseEPC("e280116060000207a4bb1518")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(epc)
	// Output: e280116060000207a4bb1518
}

// ExampleFitOrientation runs the §III-B prelude fit on synthetic
// center-spin samples and reads the offset back at two orientations.
func ExampleFitOrientation() {
	var samples []tagspin.OrientationSample
	for i := 0; i < 90; i++ {
		rho := 2 * math.Pi * float64(i) / 90
		samples = append(samples, tagspin.OrientationSample{
			Rho:   rho,
			Phase: 1.2 + 0.3*math.Sin(2*rho), // constant + orientation response
		})
	}
	cal, err := tagspin.FitOrientation(samples, 0)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	// The reference orientation ρ = π/2 has zero offset by definition.
	fmt.Printf("offset at ρ=90°: %.2f rad\n", cal.Offset(math.Pi/2))
	fmt.Printf("offset at ρ=45°: %.2f rad\n", cal.Offset(math.Pi/4))
	// Output:
	// offset at ρ=90°: 0.00 rad
	// offset at ρ=45°: 0.30 rad
}
