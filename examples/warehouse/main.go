// Warehouse: calibrate a four-antenna deployment at once.
//
// The paper's introduction motivates Tagspin with exactly this chore: a
// tag-localization deployment (à la Tagoram) needs the positions of all
// four reader antennas, and measuring them by hand takes tens of minutes
// and introduces errors. Here one pair of spinning tags localizes all four
// antennas from their own phase reports, sequentially, in simulated
// seconds.
//
// Run with: go run ./examples/warehouse
package main

import (
	"fmt"
	"math/rand"
	"os"

	"github.com/tagspin/tagspin"
	"github.com/tagspin/tagspin/internal/antenna"
	"github.com/tagspin/tagspin/internal/geom"
	"github.com/tagspin/tagspin/internal/testbed"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "warehouse:", err)
		os.Exit(1)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(21))
	world := testbed.DefaultScenario(0, rng)

	// The four Yeon panels of a Tagoram-style portal, at surveyed-unknown
	// positions around the aisle.
	truths := []geom.Vec3{
		{X: -2.2, Y: 1.8, Z: 0},
		{X: -0.8, Y: 2.6, Z: 0},
		{X: 0.9, Y: 2.5, Z: 0},
		{X: 2.1, Y: 1.6, Z: 0},
	}
	units := antenna.YeonSet(len(truths), rng)

	// One orientation prelude serves every antenna: the fitted response is
	// a property of the tag, not of the reader position.
	world.PlaceReader(truths[0])
	registered, err := world.CalibratedSpinningTags(rng)
	if err != nil {
		return fmt.Errorf("orientation prelude: %w", err)
	}
	locator := tagspin.NewLocator(tagspin.Config{})

	fmt.Println("calibrating a 4-antenna deployment with two spinning tags:")
	var worst float64
	for i, unit := range units {
		world.Antenna = unit
		world.PlaceReader(truths[i])
		col, err := world.Collect(rng)
		if err != nil {
			return fmt.Errorf("antenna %d collect: %w", unit.ID, err)
		}
		res, err := locator.Locate2D(registered, col.Obs)
		if err != nil {
			return fmt.Errorf("antenna %d locate: %w", unit.ID, err)
		}
		e := res.Position.DistanceTo(truths[i].XY())
		if e > worst {
			worst = e
		}
		fmt.Printf("  %s: estimated %v, truth %v, error %.1f cm\n",
			unit.Name, res.Position, truths[i].XY(), e*100)
	}
	fmt.Printf("worst antenna error: %.1f cm\n", worst*100)
	fmt.Println("(each antenna needed one ~4 s spin session — no tape measure involved)")
	return nil
}
