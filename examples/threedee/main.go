// Threedee: localize an elevated reader antenna in 3D (§V-B).
//
// The disks spin in the horizontal plane, so each angle spectrum R(φ, γ)
// determines the azimuth exactly but only the *magnitude* of the polar
// angle: a reader at +z and its mirror at −z produce identical phases at
// every horizontal disk. The pipeline returns both candidates and resolves
// them with a dead-space policy, as the paper suggests.
//
// Run with: go run ./examples/threedee
package main

import (
	"fmt"
	"math/rand"
	"os"

	"github.com/tagspin/tagspin"
	"github.com/tagspin/tagspin/internal/geom"
	"github.com/tagspin/tagspin/internal/testbed"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "threedee:", err)
		os.Exit(1)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(5))

	// Disks mounted 9.5 cm above the desk plane, as in the paper's 3D
	// experiments; the reader hangs 1.1 m up.
	world := testbed.DefaultScenario(0.095, rng)
	truth := geom.V3(-1.6, 1.2, 1.1)
	world.PlaceReader(truth)

	registered, err := world.CalibratedSpinningTags(rng)
	if err != nil {
		return fmt.Errorf("orientation prelude: %w", err)
	}
	col, err := world.Collect(rng)
	if err != nil {
		return fmt.Errorf("collect: %w", err)
	}

	locator := tagspin.NewLocator(tagspin.Config{ZPolicy: tagspin.ZPreferNonNegative})
	res, err := locator.Locate3D(registered, col.Obs)
	if err != nil {
		return fmt.Errorf("locate: %w", err)
	}

	for _, b := range res.Bearings {
		fmt.Printf("tag %s: azimuth %.2f°, polar ±%.2f°\n",
			b.EPC, geom.Degrees(b.Azimuth), geom.Degrees(b.Polar))
	}
	fmt.Printf("selected candidate: %v\n", res.Position)
	fmt.Printf("mirror candidate:   %v (rejected: below the disks is dead space)\n", res.Mirror)
	fmt.Printf("z-estimate spread between disks: %.1f cm\n", res.ZSpread*100)
	fmt.Printf("true position:      %v\n", truth)
	fmt.Printf("error distance:     %.1f cm\n", res.Position.DistanceTo(truth)*100)
	return nil
}
