// Quickstart: localize a reader antenna in 2D with two spinning tags.
//
// This is the paper's Fig. 1 scenario end to end, entirely in-process: a
// simulated deployment generates phase snapshots, the orientation prelude
// (§III-B) is fitted, and the Tagspin pipeline intersects the two angle
// spectra to pinpoint the reader.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"
	"os"

	"github.com/tagspin/tagspin"
	"github.com/tagspin/tagspin/internal/geom"
	"github.com/tagspin/tagspin/internal/testbed"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(7))

	// 1. Deploy the infrastructure: two tags on 10 cm disks spinning at
	//    ω = π rad/s, centers 50 cm apart — the paper's default layout.
	world := testbed.DefaultScenario(0, rng)

	// 2. The reader antenna we want to calibrate sits somewhere unknown
	//    to the algorithm (the simulator knows, of course).
	truth := geom.V3(-1.8, 1.4, 0)
	world.PlaceReader(truth)

	// 3. Installation-time prelude: spin each tag at the disk *center* to
	//    fit its phase-vs-orientation response (Observation 3.1).
	registered, err := world.CalibratedSpinningTags(rng)
	if err != nil {
		return fmt.Errorf("orientation prelude: %w", err)
	}

	// 4. Collect one session of phase snapshots (two disk rotations).
	col, err := world.Collect(rng)
	if err != nil {
		return fmt.Errorf("collect: %w", err)
	}
	for epc, snaps := range col.Obs {
		fmt.Printf("tag %s: %d phase reports\n", epc, len(snaps))
	}

	// 5. Run the pipeline: calibrate → angle spectrum per disk → intersect.
	locator := tagspin.NewLocator(tagspin.Config{})
	res, err := locator.Locate2D(registered, col.Obs)
	if err != nil {
		return fmt.Errorf("locate: %w", err)
	}

	for _, b := range res.Bearings {
		fmt.Printf("tag %s sees the reader at azimuth %.2f° (peak power %.2f, %d snapshots)\n",
			b.EPC, geom.Degrees(b.Azimuth), b.Power, b.Snapshots)
	}
	fmt.Printf("estimated reader position: %v\n", res.Position)
	fmt.Printf("true reader position:      %v\n", truth.XY())
	fmt.Printf("error distance:            %.1f cm\n", res.Position.DistanceTo(truth.XY())*100)
	return nil
}
