// Livedemo: the full distributed system over loopback TCP.
//
// Three processes-worth of machinery run in one binary: a simulated reader
// serves the LLRP-flavoured protocol, the localization server exposes its
// HTTP API and dials the reader on demand, and a client POSTs a locate
// request — the same data path a real deployment uses, quantized phase
// words and all.
//
// Run with: go run ./examples/livedemo
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"os"

	"github.com/tagspin/tagspin/internal/geom"
	"github.com/tagspin/tagspin/internal/locsrv"
	"github.com/tagspin/tagspin/internal/readersim"
	"github.com/tagspin/tagspin/internal/registry"
	"github.com/tagspin/tagspin/internal/testbed"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "livedemo:", err)
		os.Exit(1)
	}
}

func run() error {
	rng := rand.New(rand.NewSource(11))

	// --- the physical world: a reader at an unknown spot ---
	world := testbed.DefaultScenario(0, rng)
	truth := geom.V3(1.9, 1.1, 0)
	world.PlaceReader(truth)

	// --- the reader device, serving LLRP over TCP ---
	reader, err := readersim.New(readersim.Config{World: world, TimeScale: 200, Seed: 3})
	if err != nil {
		return err
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go reader.Serve(lis) //nolint:errcheck // shut down via reader.Close
	defer reader.Close()
	fmt.Printf("reader serving LLRP on %s (true position %v, hidden from the server)\n",
		lis.Addr(), truth.XY())

	// --- the localization server with its registry ---
	calibrated, err := world.CalibratedSpinningTags(rng)
	if err != nil {
		return err
	}
	reg := registry.New()
	for _, st := range calibrated {
		if err := reg.Add(registry.EntryFromSpinningTag(st)); err != nil {
			return err
		}
	}
	srv, err := locsrv.New(locsrv.Config{Registry: reg})
	if err != nil {
		return err
	}
	httpSrv := httptest.NewServer(srv.Handler())
	defer httpSrv.Close()
	fmt.Printf("localization server on %s with %d registered spinning tags\n",
		httpSrv.URL, reg.Len())

	// --- a client asks the server to localize the reader ---
	reqBody, err := json.Marshal(locsrv.LocateRequest{
		ReaderAddr:     lis.Addr().String(),
		Mode:           "2d",
		DurationMillis: 4000,
	})
	if err != nil {
		return err
	}
	resp, err := http.Post(httpSrv.URL+"/v1/locate", "application/json", bytes.NewReader(reqBody))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("locate returned HTTP %d", resp.StatusCode)
	}
	var out locsrv.LocateResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return err
	}

	got := geom.V2(out.Position[0], out.Position[1])
	fmt.Println("server response:")
	for _, b := range out.Bearings {
		fmt.Printf("  tag %s: azimuth %.4f rad from %d snapshots\n", b.EPC, b.AzimuthRad, b.Snapshots)
	}
	fmt.Printf("  estimated position %v — true %v — error %.1f cm\n",
		got, truth.XY(), got.DistanceTo(truth.XY())*100)
	return nil
}
