package tagspin_test

import (
	"math"
	"math/rand"
	"testing"

	"github.com/tagspin/tagspin"
	"github.com/tagspin/tagspin/internal/geom"
	"github.com/tagspin/tagspin/internal/testbed"
)

// TestPublicAPIQuickstart drives the whole library through the exported
// facade only (plus the testbed to generate data), mirroring the README
// quick start.
func TestPublicAPIQuickstart(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	world := testbed.DefaultScenario(0, rng)
	truth := geom.V3(-1.7, 1.5, 0)
	world.PlaceReader(truth)
	registered, err := world.CalibratedSpinningTags(rng)
	if err != nil {
		t.Fatal(err)
	}
	col, err := world.Collect(rng)
	if err != nil {
		t.Fatal(err)
	}

	loc := tagspin.NewLocator(tagspin.Config{Kind: tagspin.ProfileR})
	res, err := loc.Locate2D(registered, col.Obs)
	if err != nil {
		t.Fatal(err)
	}
	if e := res.Position.DistanceTo(truth.XY()); e > 0.15 {
		t.Errorf("public-API 2D error %.1f cm", e*100)
	}

	res3, err := loc.Locate3D(registered, col.Obs)
	if err != nil {
		t.Fatal(err)
	}
	if res3.Mirror.Z > res3.Position.Z {
		t.Error("default ZPolicy should prefer the non-negative candidate")
	}
}

func TestPublicAPIErrors(t *testing.T) {
	loc := tagspin.NewLocator(tagspin.Config{})
	if _, err := loc.Locate2D(nil, nil); err == nil {
		t.Error("empty locate should fail")
	}
}

func TestPublicFitOrientation(t *testing.T) {
	var samples []tagspin.OrientationSample
	for i := 0; i < 90; i++ {
		rho := 2 * math.Pi * float64(i) / 90
		samples = append(samples, tagspin.OrientationSample{
			Rho:   rho,
			Phase: 1 + 0.3*math.Sin(2*rho),
		})
	}
	cal, err := tagspin.FitOrientation(samples, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := cal.Offset(math.Pi / 2); math.Abs(got) > 1e-9 {
		t.Errorf("reference offset = %v, want 0", got)
	}
	if pp := cal.PeakToPeak(); math.Abs(pp-0.6) > 0.05 {
		t.Errorf("peak-to-peak = %v, want ≈0.6", pp)
	}
}

func TestPublicParseEPC(t *testing.T) {
	epc, err := tagspin.ParseEPC("00112233445566778899aabb")
	if err != nil {
		t.Fatal(err)
	}
	if epc.String() != "00112233445566778899aabb" {
		t.Errorf("round trip = %s", epc)
	}
	if _, err := tagspin.ParseEPC("nope"); err == nil {
		t.Error("bad EPC accepted")
	}
}
